//! The TCP HTTP server: three backends behind one [`Handler`] interface.
//!
//! This is the real-socket face of RCB-Agent: "a co-browsing host starts
//! running RCB-Agent on the host browser with an open TCP port (e.g., 3000)"
//! (paper §3.1, step 1). Three interchangeable backends serve the same
//! handler, selected by [`ServerConfig::backend`] (default from the
//! `RCB_SERVER_BACKEND` environment variable):
//!
//! * [`ServerBackend::Workers`] — the bounded worker pool defined in this
//!   module: connections are accepted onto a bounded queue and multiplexed
//!   across a fixed pool of worker threads; each worker pops a connection,
//!   services whatever complete requests have arrived (keep-alive
//!   supported), and rotates the connection back onto the queue. Simple
//!   and portable; concurrency is capped by the worker count.
//! * [`ServerBackend::Epoll`] — the event-driven engine in
//!   [`crate::epoll`] (Linux): nonblocking sockets on one epoll event
//!   loop, handler calls offloaded to a small dispatch pool, connection
//!   ceiling set by the fd limit instead of the thread count.
//! * [`ServerBackend::EpollSharded`] — the same engine scaled out
//!   (`SO_REUSEPORT`-style): `n` independent event loops, each with its
//!   own epoll instance, slot table, waker, and dispatch-pool slice;
//!   accepted connections are distributed round-robin by shard 0. The
//!   single loop is literally the `n = 1` case — one state machine, no
//!   parallel implementation. Shard count: explicit `n`, else the
//!   `RCB_SERVER_SHARDS` environment variable, else available cores.
//!
//! A connection closes on parse error, client close, or
//! `Connection: close` under every backend, and all keep the zero-copy
//! prefab/vectored write path.
//!
//! The worker backend's accept loop never dies on a transient `accept(2)`
//! error (EMFILE under load, ECONNABORTED, EINTR, ...): it backs off
//! exponentially and retries, exiting only on shutdown. Before this design
//! a single such error permanently killed the listener mid-session. (The
//! epoll backend gets the same resilience by muting the listener's
//! registration for a backoff window.)
//!
//! The workers backend accepts and reads through the
//! [`crate::transport`] seam, so [`HttpServer::serve`] can run the same
//! engine — same queue, same park semantics, same zero-copy writes — over
//! the in-process simulated fabric instead of kernel sockets. All time
//! the engine consults (park deadlines, accept backoff sleeps) flows
//! through [`ServerConfig::clock`], a wall clock by default.

use std::collections::VecDeque;
use std::fmt;
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use rcb_util::{Clock, DetRng, Result, SimDuration, SimTime};

use crate::transport;

use crate::message::{Request, Response, Status};
use crate::parse::{ParseReject, RequestParser};
use crate::serialize::write_response_to;

/// Whether the event-driven epoll backend is compiled in on this target
/// (the platform condition itself lives on the module declarations in
/// `lib.rs`; each `epoll` module variant reports its own support).
pub const EPOLL_SUPPORTED: bool = crate::epoll::SUPPORTED;

/// The request handler type: shared across worker/dispatch threads. A
/// handler either answers immediately ([`HandlerOutcome::Respond`]) or
/// parks the connection until an event key is published
/// ([`HandlerOutcome::Park`] — the long-poll path).
pub type Handler = Arc<dyn Fn(Request) -> HandlerOutcome + Send + Sync>;

/// Wraps a plain `Request -> Response` closure as a [`Handler`]. Most
/// handlers never park; this keeps them free of `HandlerOutcome` noise.
pub fn handler_fn<F>(f: F) -> Handler
where
    F: Fn(Request) -> Response + Send + Sync + 'static,
{
    Arc::new(move |req| HandlerOutcome::Respond(f(req)))
}

/// What a handler decided to do with one request.
pub enum HandlerOutcome {
    /// Answer now (the overwhelmingly common case).
    Respond(Response),
    /// Hold the connection open — a parked long-poll. The engine keeps
    /// the connection in its slot table (no dispatch slot consumed on the
    /// epoll backends) and completes it when the server's [`ParkHub`]
    /// publishes a key newer than `wait_key`, or when `max_wait` elapses.
    Park(Park),
}

impl From<Response> for HandlerOutcome {
    fn from(resp: Response) -> HandlerOutcome {
        HandlerOutcome::Respond(resp)
    }
}

impl fmt::Debug for HandlerOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandlerOutcome::Respond(r) => f.debug_tuple("Respond").field(&r.status).finish(),
            HandlerOutcome::Park(p) => f
                .debug_struct("Park")
                .field("channel", &p.channel)
                .field("wait_key", &p.wait_key)
                .field("max_wait", &p.max_wait)
                .finish(),
        }
    }
}

/// A deferred long-poll response. The response is produced by a closure
/// *at completion time*, not captured up front: a woken poll must serve
/// the snapshot that exists when the wake fires, and re-dispatching the
/// original request instead would re-run its side effects (auth checks,
/// piggybacked action merges).
pub struct Park {
    /// The hub channel this park waits on. Channel 0 is the default
    /// (single-session) channel every legacy caller uses; a session
    /// router gives each session its own channel so one session's
    /// publish never scans or wakes another session's parks.
    pub channel: u64,
    /// Completes when the hub publishes any key **greater than** this —
    /// for RCB, the `dom_version` the client is already up to date with.
    pub wait_key: u64,
    /// Ceiling on how long the connection stays parked before
    /// `on_timeout` answers it.
    pub max_wait: Duration,
    /// Produces the response when a newer key is published.
    pub on_wake: Box<dyn FnOnce() -> Response + Send>,
    /// Produces the fallback response when `max_wait` elapses first
    /// (also the reply when the park's channel is closed — an evicted
    /// session completes its parks with the timeout fallback).
    pub on_timeout: Box<dyn FnOnce() -> Response + Send>,
}

/// The park/wake rendezvous shared by the application and the server
/// engine. The application calls [`ParkHub::publish`] with a monotonic
/// event key (RCB: the freshly published snapshot's `dom_version`); the
/// engine completes every poll parked on an older key.
///
/// Wake delivery is level-triggered, not edge-triggered: `published` is a
/// monotonic high-water mark (`fetch_max`), so a publish that races a
/// park in flight is never lost — the engine re-checks the mark on its
/// next tick. Three consumers coexist:
///
/// * epoll event loops register a waker (their socketpair write end) via
///   [`ParkHub::register_waker`] and re-scan their parked slots when
///   poked;
/// * workers-backend threads block on the internal condvar via
///   [`ParkHub::wait_until`] (the documented degradation: a parked poll
///   pins its worker for the wait);
/// * tests read [`ParkHub::published`] directly.
pub struct ParkHub {
    /// High-water mark of published keys on the default channel (0).
    published: AtomicU64,
    /// Per-channel high-water marks and close flags for channels > 0
    /// (one per routed session). The default channel stays on the
    /// lock-free atomic above, so single-session deployments never
    /// touch this map.
    channels: Mutex<std::collections::HashMap<u64, ChannelState>>,
    /// Condvar pair for blocking waiters (workers backend).
    gate: Mutex<()>,
    cond: Condvar,
    /// Engine wakers (epoll shards) poked on every publish.
    wakers: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
    /// Long-polls currently parked, across all engines sharing this hub
    /// (gates the park cap).
    parked_now: AtomicU64,
    /// Parks refused at the cap and degraded to the immediate
    /// `on_timeout` reply.
    parks_shed: AtomicU64,
}

/// Per-channel hub state (channels > 0 only; see [`ParkHub::channels`]).
#[derive(Debug, Default, Clone, Copy)]
struct ChannelState {
    /// High-water mark of keys published on this channel.
    published: u64,
    /// Set when the channel's session is evicted: every park on the
    /// channel completes with its timeout reply, and new parks drain
    /// the same way until the tombstone is forgotten.
    closed: bool,
}

impl Default for ParkHub {
    fn default() -> Self {
        ParkHub {
            published: AtomicU64::new(0),
            channels: Mutex::new(std::collections::HashMap::new()),
            gate: Mutex::new(()),
            cond: Condvar::new(),
            wakers: Mutex::new(Vec::new()),
            parked_now: AtomicU64::new(0),
            parks_shed: AtomicU64::new(0),
        }
    }
}

impl fmt::Debug for ParkHub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParkHub")
            .field("published", &self.published.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ParkHub {
    /// Publishes an event key, waking every parked poll whose `wait_key`
    /// is older. Keys must be monotonic for "older" to mean anything;
    /// stale publishes (≤ the current mark) still poke the engines, which
    /// is harmless — a spurious scan, no spurious wake.
    pub fn publish(&self, key: u64) {
        self.published.fetch_max(key, Ordering::SeqCst);
        self.notify_engines();
    }

    /// [`ParkHub::publish`] on a specific channel: wakes only the polls
    /// parked on `channel`. Channel 0 is exactly `publish` (the default
    /// single-session channel, served by the lock-free atomic).
    pub fn publish_on(&self, channel: u64, key: u64) {
        if channel == 0 {
            return self.publish(key);
        }
        {
            let mut channels = self.lock_channels();
            let state = channels.entry(channel).or_default();
            state.published = state.published.max(key);
        }
        self.notify_engines();
    }

    /// Closes a channel: every poll parked on it — and any park that
    /// races in before [`ParkHub::forget_channel`] — completes with its
    /// timeout reply. How a session router evicts a session without
    /// leaking its parked connections.
    pub fn close_channel(&self, channel: u64) {
        if channel == 0 {
            return; // the default channel has no owning session to evict
        }
        self.lock_channels().entry(channel).or_default().closed = true;
        self.notify_engines();
    }

    /// Drops a closed channel's tombstone. Callers must be sure no new
    /// park can name this channel again (the router retires ids and
    /// never reuses them); a straggler park would simply wait out its
    /// `max_wait` and answer with the timeout reply.
    pub fn forget_channel(&self, channel: u64) {
        if channel != 0 {
            self.lock_channels().remove(&channel);
        }
    }

    /// `(published, closed)` for a channel, in one lock acquisition.
    /// Channel 0 is the lock-free atomic and never closes.
    pub(crate) fn channel_status(&self, channel: u64) -> (u64, bool) {
        if channel == 0 {
            return (self.published(), false);
        }
        self.lock_channels()
            .get(&channel)
            .map_or((0, false), |s| (s.published, s.closed))
    }

    fn lock_channels(
        &self,
    ) -> std::sync::MutexGuard<'_, std::collections::HashMap<u64, ChannelState>> {
        self.channels
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Wakes blocked waiters and pokes the epoll shard wakers — the
    /// shared tail of every publish/close.
    fn notify_engines(&self) {
        drop(
            self.gate
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        self.cond.notify_all();
        let wakers = self
            .wakers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for w in wakers.iter() {
            w();
        }
    }

    /// The current high-water mark (0 until the first publish) on the
    /// default channel.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::SeqCst)
    }

    /// The high-water mark on a specific channel (0 until the first
    /// [`ParkHub::publish_on`]; channel 0 reads [`ParkHub::published`]).
    pub fn published_on(&self, channel: u64) -> u64 {
        self.channel_status(channel).0
    }

    /// Claims one parked-poll slot under `cap`. On refusal (counted as
    /// a shed) the caller must degrade the park to its `on_timeout`
    /// reply; on success it must pair the claim with
    /// [`ParkHub::release_park`] when the park resolves — wake,
    /// timeout, or connection teardown.
    pub(crate) fn try_admit_park(&self, cap: usize) -> bool {
        let admitted = self
            .parked_now
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < cap as u64).then_some(n + 1)
            })
            .is_ok();
        if !admitted {
            self.parks_shed.fetch_add(1, Ordering::Relaxed);
        }
        admitted
    }

    /// Releases a slot claimed by [`ParkHub::try_admit_park`].
    pub(crate) fn release_park(&self) {
        self.parked_now.fetch_sub(1, Ordering::SeqCst);
    }

    /// Long-polls parked right now across every engine on this hub.
    pub fn parked_now(&self) -> u64 {
        self.parked_now.load(Ordering::SeqCst)
    }

    /// Parks refused at the cap so far (each was answered with its
    /// immediate empty-poll reply instead of being held).
    pub fn parks_shed(&self) -> u64 {
        self.parks_shed.load(Ordering::Relaxed)
    }

    /// Registers an engine waker, called (with no locks the callee cares
    /// about held) on every publish.
    pub(crate) fn register_waker(&self, waker: Box<dyn Fn() + Send + Sync>) {
        self.wakers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(waker);
    }

    /// Wakes blocked [`ParkHub::wait_until`] callers without publishing
    /// anything — how a virtual-clock advance tells parked workers to
    /// re-check their (virtual) deadlines.
    pub(crate) fn poke(&self) {
        drop(
            self.gate
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        self.cond.notify_all();
    }

    /// Blocks until a key newer than `wait_key` is published on
    /// `channel`, `deadline` passes on `clock`, the channel is closed,
    /// or `stopped` reports true (checked every slice, so server
    /// shutdown is never held up by a parked poll). Returns `true` on
    /// wake, `false` on timeout/stop/close.
    ///
    /// Under a virtual clock the deadline is virtual time, so the condvar
    /// waits in fixed wall slices and relies on publishes and clock
    /// advances ([`ParkHub::poke`]) to cut them short; a frozen clock
    /// never times a poll out, exactly like a frozen world.
    pub(crate) fn wait_until(
        &self,
        channel: u64,
        wait_key: u64,
        deadline: SimTime,
        clock: &Clock,
        stopped: &dyn Fn() -> bool,
    ) -> bool {
        loop {
            let (published, closed) = self.channel_status(channel);
            if closed {
                return false;
            }
            if published > wait_key {
                return true;
            }
            let now = clock.now();
            if now >= deadline || stopped() {
                return false;
            }
            let slice = if clock.is_virtual() {
                Duration::from_millis(50)
            } else {
                (deadline - now)
                    .as_duration()
                    .min(Duration::from_millis(50))
            };
            let guard = self
                .gate
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // Re-check under the lock: a publish between the check above
            // and this wait would otherwise sleep a full slice.
            let (published, closed) = self.channel_status(channel);
            if closed {
                return false;
            }
            if published > wait_key {
                return true;
            }
            let _ = self
                .cond
                .wait_timeout(guard, slice)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Runs the handler with unwind protection, so a panicking handler costs
/// the client a 500-and-close instead of costing the server a thread
/// (workers backend) or wedging the connection forever (epoll backend,
/// whose dispatch threads must survive to produce a completion). Returns
/// the outcome and whether the connection must close.
pub(crate) fn invoke_handler(handler: &Handler, req: Request) -> (HandlerOutcome, bool) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(req))) {
        Ok(outcome) => (outcome, false),
        Err(_) => (
            HandlerOutcome::Respond(Response::error(Status::INTERNAL, "handler panicked")),
            true,
        ),
    }
}

/// Overload-protection limits shared by every backend: connection
/// lifecycle guards (slowloris/idle/write-stall deadlines, header and
/// body byte ceilings) and admission control (dispatch high-water mark,
/// parked-poll cap, shed `Retry-After` jitter). The defaults are
/// deliberately generous — tests and benchmarks tighten them per run,
/// operators override them through the `RCB_*` environment variables
/// listed per field (see [`OverloadConfig::from_env`]).
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// How long a connection may dribble a partial request (head or
    /// body) before it is cut — the slowloris guard. Env:
    /// `RCB_HEADER_TIMEOUT_MS`.
    pub header_read_timeout: Duration,
    /// How long an idle keep-alive connection (no partial request
    /// buffered) is retained before being reaped. Env:
    /// `RCB_IDLE_TIMEOUT_MS`.
    pub idle_timeout: Duration,
    /// How long a response write may sit without moving a byte before
    /// the connection is cut. Env: `RCB_WRITE_STALL_MS`.
    pub write_stall_timeout: Duration,
    /// Maximum request-head bytes before the prefab `431` answer. Env:
    /// `RCB_MAX_HEADER_BYTES`.
    pub max_header_bytes: usize,
    /// Maximum declared body bytes before the prefab `413` answer. Env:
    /// `RCB_MAX_BODY_BYTES`.
    pub max_body_bytes: usize,
    /// Admission high-water mark: at or above this many
    /// queued-but-unserviced items (workers: connection queue; epoll:
    /// a shard's dispatch queue; sim driver: requests admitted this
    /// pump), new requests are shed with the prefab `503 + Retry-After`
    /// instead of reaching the handler. Zero sheds everything — the
    /// deterministic-test lever. Env: `RCB_QUEUE_HIGH_WATER`.
    pub queue_high_water: usize,
    /// Cap on concurrently parked long-polls; at the cap a park
    /// degrades to its immediate `on_timeout` (empty-poll) reply, so
    /// plain polling keeps working when push is saturated. Zero
    /// degrades every park — the deterministic-test lever. Env:
    /// `RCB_MAX_PARKED`.
    pub max_parked: usize,
    /// Smallest `Retry-After` (seconds) a shed response advertises.
    pub retry_after_base_secs: u64,
    /// Jitter span above the base: each shed draws uniformly from
    /// `base..=base + jitter` with a seeded RNG, so a shed herd
    /// decorrelates instead of returning as one thundering wave.
    pub retry_after_jitter_secs: u64,
    /// Seed for the `Retry-After` draw — same seed, same shed byte
    /// stream, which is what the backend-equivalence tests pin.
    pub shed_seed: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            header_read_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            write_stall_timeout: Duration::from_secs(10),
            max_header_bytes: crate::parse::MAX_HEAD,
            max_body_bytes: crate::parse::MAX_BODY,
            queue_high_water: 4096,
            max_parked: 4096,
            retry_after_base_secs: 1,
            retry_after_jitter_secs: 3,
            shed_seed: 0x5ced_2026,
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

impl OverloadConfig {
    /// The defaults with `RCB_*` environment overrides applied — what
    /// [`ServerConfig::default`] uses, so a CI leg or an operator can
    /// retune limits without a code change.
    pub fn from_env() -> OverloadConfig {
        fn ms(name: &str, default: Duration) -> Duration {
            env_u64(name).map_or(default, Duration::from_millis)
        }
        fn count(name: &str, default: usize) -> usize {
            env_u64(name).map_or(default, |v| v as usize)
        }
        let d = OverloadConfig::default();
        OverloadConfig {
            header_read_timeout: ms("RCB_HEADER_TIMEOUT_MS", d.header_read_timeout),
            idle_timeout: ms("RCB_IDLE_TIMEOUT_MS", d.idle_timeout),
            write_stall_timeout: ms("RCB_WRITE_STALL_MS", d.write_stall_timeout),
            max_header_bytes: count("RCB_MAX_HEADER_BYTES", d.max_header_bytes),
            max_body_bytes: count("RCB_MAX_BODY_BYTES", d.max_body_bytes),
            queue_high_water: count("RCB_QUEUE_HIGH_WATER", d.queue_high_water),
            max_parked: count("RCB_MAX_PARKED", d.max_parked),
            ..d
        }
    }
}

/// Live per-engine overload counters, mirrored into [`ServerStats`]
/// (see the matching fields there for precise meanings).
#[derive(Debug, Default)]
pub(crate) struct OverloadCounters {
    pub(crate) requests_shed: AtomicU64,
    pub(crate) header_timeouts: AtomicU64,
    pub(crate) idle_timeouts: AtomicU64,
    pub(crate) write_stall_timeouts: AtomicU64,
    pub(crate) oversize_head: AtomicU64,
    pub(crate) oversize_body: AtomicU64,
}

impl OverloadCounters {
    /// Bumps the counter matching a parser rejection (malformed input
    /// is a client bug, not an overload signal, and is not counted).
    pub(crate) fn count_reject(&self, reason: ParseReject) {
        let counter = match reason {
            ParseReject::HeadTooLarge => &self.oversize_head,
            ParseReject::BodyTooLarge => &self.oversize_body,
            ParseReject::Malformed => return,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// The prefab `503 + Retry-After` pool: one frozen wire image per
/// `Retry-After` value in `base..=base + jitter`, drawn with a seeded
/// RNG per shed. Zero-copy on the wire (a shed costs a clone of an
/// `Arc`'d image, never a dispatch slot), deterministic under a fixed
/// seed, and jittered enough that a shed herd does not reconverge on
/// one retry instant.
pub struct ShedResponder {
    prefabs: Vec<Response>,
    rng: Mutex<DetRng>,
}

impl ShedResponder {
    /// Freezes the prefab pool for the given limits (public so a session
    /// router can answer its own admission decisions — session cap,
    /// per-session fairness — with the identical shed byte stream).
    pub fn new(config: &OverloadConfig) -> ShedResponder {
        let base = config.retry_after_base_secs;
        let prefabs = (base..=base + config.retry_after_jitter_secs)
            .map(|secs| {
                // Retry-After must land before the freeze: `with_header`
                // invalidates a prefab image.
                Response::error(Status::SERVICE_UNAVAILABLE, "overloaded, retry later")
                    .with_header("Retry-After", secs.to_string())
                    .into_prefab()
            })
            .collect();
        ShedResponder {
            prefabs,
            rng: Mutex::new(DetRng::new(config.shed_seed)),
        }
    }

    /// The next shed response — a clone of a frozen prefab, wire bytes
    /// shared.
    pub fn next(&self) -> Response {
        let mut rng = self
            .rng
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let idx = rng.next_below(self.prefabs.len() as u64) as usize;
        self.prefabs[idx].clone()
    }
}

/// Everything an engine needs to enforce overload protection: the
/// limits, the live counters, and the shed-response pool. One per
/// server, shared with every worker thread / event-loop shard.
pub(crate) struct OverloadCtx {
    pub(crate) config: OverloadConfig,
    pub(crate) counters: OverloadCounters,
    pub(crate) shed: ShedResponder,
}

impl OverloadCtx {
    pub(crate) fn new(config: OverloadConfig) -> Arc<OverloadCtx> {
        let shed = ShedResponder::new(&config);
        Arc::new(OverloadCtx {
            config,
            counters: OverloadCounters::default(),
            shed,
        })
    }

    /// Folds the live counters (plus the hub's park-shed count) into a
    /// stats struct whose engine-level fields the caller fills in.
    pub(crate) fn fill_stats(&self, stats: &mut ServerStats, hub: &ParkHub) {
        let c = &self.counters;
        stats.requests_shed = c.requests_shed.load(Ordering::Relaxed);
        stats.parks_shed = hub.parks_shed();
        stats.header_timeouts = c.header_timeouts.load(Ordering::Relaxed);
        stats.idle_timeouts = c.idle_timeouts.load(Ordering::Relaxed);
        stats.write_stall_timeouts = c.write_stall_timeouts.load(Ordering::Relaxed);
        stats.oversize_head = c.oversize_head.load(Ordering::Relaxed);
        stats.oversize_body = c.oversize_body.load(Ordering::Relaxed);
    }
}

/// The shared answer for a parser rejection: prefab `431` for an
/// oversized head, prefab `413` for an oversized declared body (frozen
/// once, cloned per use), and the classic non-prefab `400` for
/// malformed input. Every engine routes through here, so the error
/// bytes are identical on all backends.
pub(crate) fn reject_response(reason: ParseReject) -> Response {
    static HEAD: OnceLock<Response> = OnceLock::new();
    static BODY: OnceLock<Response> = OnceLock::new();
    match reason {
        ParseReject::Malformed => Response::error(Status::BAD_REQUEST, "malformed request"),
        ParseReject::HeadTooLarge => HEAD
            .get_or_init(|| {
                Response::error(Status::HEADER_TOO_LARGE, "request head too large").into_prefab()
            })
            .clone(),
        ParseReject::BodyTooLarge => BODY
            .get_or_init(|| {
                Response::error(Status::PAYLOAD_TOO_LARGE, "request body too large").into_prefab()
            })
            .clone(),
    }
}

/// Which connection-servicing engine a server runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerBackend {
    /// Bounded worker pool: one blocking thread services one connection at
    /// a time; connections rotate through a queue.
    Workers,
    /// Event-driven epoll loop (Linux): every connection nonblocking on
    /// one loop thread, handler calls on a small dispatch pool. Falls back
    /// to [`ServerBackend::Workers`] where epoll is not compiled in.
    Epoll,
    /// Sharded event-driven engine (Linux): `n` independent epoll event
    /// loops — each with its own epoll instance, connection-slot table,
    /// waker, and dispatch-pool slice — with accepted connections
    /// distributed round-robin across loops by the acceptor shard.
    /// `EpollSharded(0)` means **auto**: the `RCB_SERVER_SHARDS`
    /// environment variable when set, else available cores (see
    /// [`ServerBackend::shard_count`]). Falls back to
    /// [`ServerBackend::Workers`] where epoll is not compiled in.
    EpollSharded(usize),
}

impl ServerBackend {
    /// The environment variable [`ServerBackend::from_env`] consults —
    /// also the knob the CI matrix sets per leg.
    pub const ENV_VAR: &'static str = "RCB_SERVER_BACKEND";

    /// The environment variable that sets the auto shard count for
    /// [`ServerBackend::EpollSharded`] (`EpollSharded(0)`); unset means
    /// "available cores".
    pub const SHARDS_ENV_VAR: &'static str = "RCB_SERVER_SHARDS";

    /// The accepted backend grammar, quoted verbatim in every parse
    /// error so a typo'd name or env var tells the operator exactly
    /// what would have been valid.
    pub const GRAMMAR: &'static str =
        "\"workers\", \"epoll\", \"epoll-sharded\", or \"epoll-sharded:<n>\" (n >= 1)";

    /// Parses a backend name (`"workers"` / `"epoll"` / `"epoll-sharded"`
    /// / `"epoll-sharded:<n>"`, case-insensitive). The bare sharded form
    /// selects the auto shard count. An unknown name is an error carrying
    /// the accepted grammar — never a silent fallback.
    pub fn parse(name: &str) -> Result<ServerBackend> {
        let lowered = name.trim().to_ascii_lowercase();
        let parsed = match lowered.as_str() {
            "workers" => Some(ServerBackend::Workers),
            "epoll" => Some(ServerBackend::Epoll),
            "epoll-sharded" => Some(ServerBackend::EpollSharded(0)),
            other => other.strip_prefix("epoll-sharded:").and_then(|n| {
                n.parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .map(ServerBackend::EpollSharded)
            }),
        };
        parsed.ok_or_else(|| {
            rcb_util::RcbError::InvalidInput(format!(
                "unknown server backend {name:?}; expected {}",
                Self::GRAMMAR
            ))
        })
    }

    /// Reads `RCB_SERVER_BACKEND`: unset selects
    /// [`ServerBackend::Workers`]; a set-but-unrecognized value is a
    /// startup error naming the variable and the accepted grammar (a
    /// typo in a CI matrix must fail the leg, not silently test the
    /// wrong backend).
    pub fn from_env() -> Result<ServerBackend> {
        match std::env::var(Self::ENV_VAR) {
            Ok(value) => Self::parse(&value).map_err(|_| {
                rcb_util::RcbError::InvalidInput(format!(
                    "{}={value:?} not recognized; expected {}",
                    Self::ENV_VAR,
                    Self::GRAMMAR
                ))
            }),
            Err(_) => Ok(ServerBackend::Workers),
        }
    }

    /// The backend that will actually run on this target: the epoll
    /// variants degrade to `Workers` where the epoll shims are not
    /// compiled in.
    pub fn effective(self) -> ServerBackend {
        match self {
            ServerBackend::Epoll | ServerBackend::EpollSharded(_) if !EPOLL_SUPPORTED => {
                ServerBackend::Workers
            }
            other => other,
        }
    }

    /// The number of event-loop shards this backend resolves to on this
    /// machine: an explicit `EpollSharded(n)` is `n`; the auto form
    /// consults `RCB_SERVER_SHARDS`, then available cores. Non-sharded
    /// backends run one loop at most, so they resolve to 1.
    pub fn shard_count(self) -> usize {
        match self.effective() {
            ServerBackend::EpollSharded(0) => std::env::var(Self::SHARDS_ENV_VAR)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|p| p.get())
                        .unwrap_or(1)
                }),
            ServerBackend::EpollSharded(n) => n,
            _ => 1,
        }
    }

    /// Folds platform fallback *and* the auto shard count into an
    /// explicit value: `EpollSharded(0)` becomes `EpollSharded(n)` for
    /// the `n` this machine resolves to; everything else is
    /// [`ServerBackend::effective`]. What [`HttpServer::backend`] reports.
    pub fn resolved(self) -> ServerBackend {
        match self.effective() {
            ServerBackend::EpollSharded(_) => ServerBackend::EpollSharded(self.shard_count()),
            other => other,
        }
    }

    /// Stable lowercase name (matches what [`ServerBackend::parse`]
    /// takes; the shard count is not encoded — parse the `:<n>` suffix
    /// form to recover an explicit count).
    pub fn label(self) -> &'static str {
        match self {
            ServerBackend::Workers => "workers",
            ServerBackend::Epoll => "epoll",
            ServerBackend::EpollSharded(_) => "epoll-sharded",
        }
    }
}

impl fmt::Display for ServerBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Aggregate engine counters, summed across event-loop shards. The
/// workers backend reports zero shards (it has no event loop); the epoll
/// backends report one entry per shard in `connections_per_shard`, which
/// round-robin distribution keeps balanced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Transient `accept(2)` errors survived (retried with backoff).
    pub accept_errors: u64,
    /// Connections accepted and registered, total across shards.
    pub connections_accepted: u64,
    /// Event-loop shards running (0 = workers backend, 1 = single-loop
    /// epoll, `n` = sharded).
    pub shards: usize,
    /// Connections assigned to each shard (length = `shards`).
    pub connections_per_shard: Vec<u64>,
    /// Requests answered with the prefab `503` shed reply at the
    /// admission high-water mark (no dispatch slot consumed).
    pub requests_shed: u64,
    /// Long-polls degraded to their immediate empty reply at the park
    /// cap.
    pub parks_shed: u64,
    /// Connections cut by the slowloris (partial-request) deadline.
    pub header_timeouts: u64,
    /// Idle keep-alive connections reaped by the idle deadline.
    pub idle_timeouts: u64,
    /// Connections cut because a response write stalled past the
    /// write-stall deadline.
    pub write_stall_timeouts: u64,
    /// Requests refused with the prefab `431` (head over limit).
    pub oversize_head: u64,
    /// Requests refused with the prefab `413` (declared body over
    /// limit).
    pub oversize_body: u64,
}

/// Backend choice plus pool and queue sizing.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Which engine services connections. The default comes from the
    /// `RCB_SERVER_BACKEND` environment variable (workers when unset), so
    /// a whole test suite or benchmark can be switched without a code
    /// change.
    pub backend: ServerBackend,
    /// Worker threads (workers backend) or blocking-dispatch threads
    /// (epoll backend) — the handler-concurrency bound either way.
    pub workers: usize,
    /// Workers backend only: maximum connections admitted onto the queue
    /// before the accept loop applies backpressure (waits for capacity).
    /// The epoll backend has no such queue — its connection ceiling is
    /// the process fd limit.
    pub queue_capacity: usize,
    /// Workers backend only: how long a worker waits for bytes on one
    /// connection before rotating it back onto the queue. Smaller values
    /// lower worst-case latency under many idle connections; larger
    /// values reduce queue churn. (The epoll backend never waits on a
    /// single connection at all.)
    pub read_timeout: Duration,
    /// The park/wake rendezvous for long-polls. The default is a fresh
    /// hub; the application keeps a clone of the `Arc` and calls
    /// [`ParkHub::publish`] when new content is available. A handler that
    /// never returns [`HandlerOutcome::Park`] never touches it.
    pub park_hub: Arc<ParkHub>,
    /// The time source for park deadlines and accept-backoff sleeps. The
    /// wall clock in deployment; a shared virtual clock under the world
    /// sim, so parked long-polls time out on simulated time.
    pub clock: Clock,
    /// Overload-protection limits: lifecycle-guard deadlines, size
    /// ceilings, the admission high-water mark, the park cap, and the
    /// shed jitter. The default applies the `RCB_*` environment
    /// overrides.
    pub overload: OverloadConfig,
}

impl Default for ServerConfig {
    /// [`ServerConfig::from_env`], panicking with the backend grammar on
    /// a bad `RCB_SERVER_BACKEND` — the clear startup error for a typo'd
    /// environment (a server must not silently run the wrong engine).
    fn default() -> Self {
        ServerConfig::from_env().unwrap_or_else(|e| panic!("{e}"))
    }
}

impl ServerConfig {
    /// The one documented environment read for server configuration:
    /// backend from `RCB_SERVER_BACKEND` (workers when unset; a bad
    /// value is an error carrying the grammar), overload limits from the
    /// `RCB_*` variables via [`OverloadConfig::from_env`]. Everything
    /// else takes the code defaults (8 workers, 256-connection queue,
    /// 2 ms rotate timeout, fresh [`ParkHub`], wall clock).
    pub fn from_env() -> Result<ServerConfig> {
        Ok(ServerConfig {
            backend: ServerBackend::from_env()?,
            workers: 8,
            queue_capacity: 256,
            read_timeout: Duration::from_millis(2),
            park_hub: Arc::new(ParkHub::default()),
            clock: Clock::wall(),
            overload: OverloadConfig::from_env(),
        })
    }

    /// A builder over the env-derived defaults — the one idiom for
    /// "defaults except ..." construction in tests and benches (replaces
    /// scattered struct-update spelling).
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }
}

/// Builder for [`ServerConfig`] (see [`ServerConfig::builder`]): each
/// setter overrides one field of the env-derived defaults; [`build`]
/// returns the finished config.
///
/// [`build`]: ServerConfigBuilder::build
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Selects the serving engine (overrides `RCB_SERVER_BACKEND`).
    pub fn backend(mut self, backend: ServerBackend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Worker threads (workers backend) / dispatch threads (epoll).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Workers-backend connection-queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Workers-backend per-connection read-rotate timeout.
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.config.read_timeout = timeout;
        self
    }

    /// Shares an existing park/wake hub (the application publishes on
    /// it; the engine parks against it).
    pub fn park_hub(mut self, hub: Arc<ParkHub>) -> Self {
        self.config.park_hub = hub;
        self
    }

    /// The engine time source (virtual under the world sim).
    pub fn clock(mut self, clock: Clock) -> Self {
        self.config.clock = clock;
        self
    }

    /// Overload-protection limits (replaces the env-derived set).
    pub fn overload(mut self, overload: OverloadConfig) -> Self {
        self.config.overload = overload;
        self
    }

    /// The finished configuration.
    pub fn build(self) -> ServerConfig {
        self.config
    }
}

/// Initial backoff after a transient `accept(2)` error.
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(1);
/// Backoff ceiling — EMFILE storms retry twice a second, not in a hot loop.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// Doubles an accept backoff up to the ceiling.
fn next_accept_backoff(current: Duration) -> Duration {
    (current * 2).min(ACCEPT_BACKOFF_MAX)
}

/// One live connection plus its incremental parse state, as it travels
/// between the queue and workers. The stream is a [`transport::Conn`], so
/// the same worker code services kernel sockets and fabric connections.
struct Conn {
    stream: transport::Conn,
    parser: RequestParser,
    /// Engine-clock instant of the last byte read (the idle guard).
    last_activity: SimTime,
    /// Set while a partial request sits in the parser (the slowloris
    /// guard); cleared when the buffer drains.
    partial_since: Option<SimTime>,
}

/// What a worker decided after one service pass over a connection.
enum ConnFate {
    /// Still healthy: rotate back onto the queue.
    Keep,
    /// Closed by the client, by protocol (`Connection: close` / parse
    /// error), or by an I/O error: drop it.
    Close,
}

/// The bounded connection queue shared by the accept loop and workers.
struct ConnQueue {
    inner: Mutex<VecDeque<Conn>>,
    /// Signaled when a connection is queued (workers wait on this).
    readable: Condvar,
    /// Signaled when a pop frees capacity (the accept loop waits on this
    /// while applying backpressure).
    writable: Condvar,
    capacity: usize,
    stop: AtomicBool,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            inner: Mutex::new(VecDeque::new()),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
            stop: AtomicBool::new(false),
        }
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.readable.notify_all();
        self.writable.notify_all();
    }

    /// Admits a newly accepted connection, waiting while the queue is at
    /// capacity (backpressure on the accept loop). Returns `false` (and
    /// drops the connection) when shutting down.
    fn push_accepted(&self, conn: Conn) -> bool {
        let mut q = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while q.len() >= self.capacity {
            if self.stopped() {
                return false;
            }
            // Timeout only as a stop-flag safety net; pops signal
            // `writable` the moment capacity frees.
            let (guard, _) = self
                .writable
                .wait_timeout(q, Duration::from_millis(10))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q = guard;
        }
        if self.stopped() {
            return false;
        }
        q.push_back(conn);
        self.readable.notify_one();
        true
    }

    /// Rotates a serviced connection back. Never blocks: workers must not
    /// deadlock against a full queue, so rotation may transiently exceed
    /// capacity by at most the worker count.
    fn push_rotated(&self, conn: Conn) {
        if self.stopped() {
            return;
        }
        let mut q = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        q.push_back(conn);
        self.readable.notify_one();
    }

    /// Connections currently queued — the workers backend's admission
    /// signal. Idle keep-alive connections rotate through the queue and
    /// count too, which is why the default high-water mark is far above
    /// the worker count.
    fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Pops the next connection, waiting up to `timeout`.
    fn pop(&self, timeout: Duration) -> Option<Conn> {
        let mut q = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if q.is_empty() && !self.stopped() {
            let (guard, _) = self
                .readable
                .wait_timeout(q, timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q = guard;
        }
        let conn = q.pop_front();
        if conn.is_some() && q.len() < self.capacity {
            self.writable.notify_one();
        }
        conn
    }
}

/// The worker-pool engine behind [`HttpServer`].
struct WorkerServer {
    queue: Arc<ConnQueue>,
    accept_errors: Arc<AtomicU64>,
    connections_accepted: Arc<AtomicU64>,
    overload: Arc<OverloadCtx>,
    hub: Arc<ParkHub>,
    threads: Vec<JoinHandle<()>>,
}

/// The engine actually running behind an [`HttpServer`].
enum Engine {
    Workers(WorkerServer),
    Epoll(crate::epoll::EpollServer),
}

/// A running HTTP server; dropping it (or calling [`HttpServer::shutdown`])
/// stops accepting, drains in-flight work, and joins all threads.
pub struct HttpServer {
    addr: SocketAddr,
    backend: ServerBackend,
    engine: Engine,
}

impl HttpServer {
    /// Binds with the default configuration (see [`ServerConfig`] — the
    /// backend comes from `RCB_SERVER_BACKEND`).
    pub fn bind(addr: &str, handler: Handler) -> Result<HttpServer> {
        Self::bind_with(addr, handler, ServerConfig::default())
    }

    /// Binds to `addr` (use port 0 for an ephemeral port) and starts the
    /// configured backend's threads.
    pub fn bind_with(addr: &str, handler: Handler, config: ServerConfig) -> Result<HttpServer> {
        match config.backend.resolved() {
            ServerBackend::Workers => Self::bind_workers(addr, handler, config),
            // On targets without the epoll shims these arms are
            // dynamically unreachable (`resolved()` degrades the epoll
            // variants to Workers) and bind against the never-constructed
            // stub module.
            ServerBackend::Epoll => {
                let server = crate::epoll::EpollServer::bind(addr, handler, &config, 1)?;
                Ok(HttpServer {
                    addr: server.addr(),
                    backend: ServerBackend::Epoll,
                    engine: Engine::Epoll(server),
                })
            }
            ServerBackend::EpollSharded(shards) => {
                let server = crate::epoll::EpollServer::bind(addr, handler, &config, shards)?;
                Ok(HttpServer {
                    addr: server.addr(),
                    backend: ServerBackend::EpollSharded(server.shard_count()),
                    engine: Engine::Epoll(server),
                })
            }
        }
    }

    /// Runs the workers engine over an already-bound [`transport::Listener`]
    /// — the entry point the deterministic world sim uses to serve real
    /// handler code over fabric connections (threaded mode). The backend
    /// in `config` is ignored: the epoll engines are kernel-socket
    /// machinery, so a seam listener always gets the workers engine.
    pub fn serve(
        listener: transport::Listener,
        handler: Handler,
        config: ServerConfig,
    ) -> Result<HttpServer> {
        let local = listener.local_addr()?;
        Self::serve_workers(listener, local, handler, config)
    }

    fn bind_workers(addr: &str, handler: Handler, config: ServerConfig) -> Result<HttpServer> {
        let listener = transport::Listener::bind_tcp(addr)?;
        let local = listener.local_addr()?;
        Self::serve_workers(listener, local, handler, config)
    }

    fn serve_workers(
        listener: transport::Listener,
        local: SocketAddr,
        handler: Handler,
        config: ServerConfig,
    ) -> Result<HttpServer> {
        let queue = Arc::new(ConnQueue::new(config.queue_capacity.max(1)));
        let accept_errors = Arc::new(AtomicU64::new(0));
        let connections_accepted = Arc::new(AtomicU64::new(0));
        let overload = OverloadCtx::new(config.overload.clone());
        let mut threads = Vec::with_capacity(config.workers + 1);

        // Virtual time: advances must wake parked workers so they
        // re-check their (virtual) park deadlines.
        if config.clock.is_virtual() {
            let hub = Arc::clone(&config.park_hub);
            config.clock.on_advance(Box::new(move || hub.poke()));
        }

        let accept_queue = Arc::clone(&queue);
        let errors = Arc::clone(&accept_errors);
        let accepted = Arc::clone(&connections_accepted);
        let accept_clock = config.clock.clone();
        let accept_overload = Arc::clone(&overload);
        threads.push(std::thread::spawn(move || {
            accept_loop(
                listener,
                accept_queue,
                errors,
                accepted,
                accept_clock,
                accept_overload,
            );
        }));

        for _ in 0..config.workers.max(1) {
            let worker_queue = Arc::clone(&queue);
            let handler = Arc::clone(&handler);
            let read_timeout = config.read_timeout;
            let hub = Arc::clone(&config.park_hub);
            let clock = config.clock.clone();
            let worker_overload = Arc::clone(&overload);
            threads.push(std::thread::spawn(move || {
                while !worker_queue.stopped() {
                    let Some(mut conn) = worker_queue.pop(Duration::from_millis(50)) else {
                        continue;
                    };
                    match service_connection(
                        &mut conn,
                        &handler,
                        read_timeout,
                        &hub,
                        &clock,
                        &worker_queue,
                        &worker_overload,
                    ) {
                        ConnFate::Keep => worker_queue.push_rotated(conn),
                        ConnFate::Close => {}
                    }
                }
            }));
        }

        Ok(HttpServer {
            addr: local,
            backend: ServerBackend::Workers,
            engine: Engine::Workers(WorkerServer {
                queue,
                accept_errors,
                connections_accepted,
                overload,
                hub: Arc::clone(&config.park_hub),
                threads,
            }),
        })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The backend actually servicing connections (after any platform
    /// fallback from `Epoll` to `Workers`).
    pub fn backend(&self) -> ServerBackend {
        self.backend
    }

    /// Event-loop shards the engine runs (0 for the workers backend).
    pub fn shards(&self) -> usize {
        match &self.engine {
            Engine::Workers(_) => 0,
            Engine::Epoll(e) => e.shard_count(),
        }
    }

    /// Aggregate engine counters (accept errors, accepted connections,
    /// per-shard assignment).
    pub fn stats(&self) -> ServerStats {
        match &self.engine {
            Engine::Workers(w) => {
                let mut stats = ServerStats {
                    accept_errors: w.accept_errors.load(Ordering::Relaxed),
                    connections_accepted: w.connections_accepted.load(Ordering::Relaxed),
                    shards: 0,
                    connections_per_shard: Vec::new(),
                    ..ServerStats::default()
                };
                w.overload.fill_stats(&mut stats, &w.hub);
                stats
            }
            Engine::Epoll(e) => e.stats(),
        }
    }

    /// Transient `accept(2)` errors survived so far (every backend retries
    /// them with backoff instead of dying).
    pub fn accept_errors(&self) -> u64 {
        self.stats().accept_errors
    }

    /// Stops accepting, drains in-flight work, and joins all threads.
    pub fn shutdown(&mut self) {
        match &mut self.engine {
            Engine::Workers(w) => {
                w.queue.shutdown();
                for t in w.threads.drain(..) {
                    let _ = t.join();
                }
            }
            Engine::Epoll(e) => e.shutdown(),
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The accept loop: admit connections, survive transient errors. Idle
/// polls and error backoffs sleep on the engine clock — real sleeps on
/// the wall clock; on a virtual clock they ride the clock's waiter
/// condvar, which advances (and shutdown-era pokes) cut short.
fn accept_loop(
    listener: transport::Listener,
    queue: Arc<ConnQueue>,
    errors: Arc<AtomicU64>,
    accepted: Arc<AtomicU64>,
    clock: Clock,
    overload: Arc<OverloadCtx>,
) {
    let mut backoff = ACCEPT_BACKOFF_START;
    while !queue.stopped() {
        // Test-only fault hook (inert in production builds): an armed
        // Accept fault behaves exactly like the kernel refusing the call.
        let next = match rcb_util::fault::take(rcb_util::fault::Op::Accept) {
            Some(e) => Err(e),
            None => listener.try_accept(),
        };
        match next {
            Ok(mut stream) => {
                backoff = ACCEPT_BACKOFF_START;
                accepted.fetch_add(1, Ordering::Relaxed);
                // Blocking writes error out (`SO_SNDTIMEO`) instead of
                // pinning a worker when the peer stops draining.
                let _ = stream.set_write_timeout(Some(overload.config.write_stall_timeout));
                queue.push_accepted(Conn {
                    stream,
                    parser: RequestParser::with_limits(
                        overload.config.max_header_bytes,
                        overload.config.max_body_bytes,
                    ),
                    last_activity: clock.now(),
                    partial_since: None,
                });
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // EMFILE, ECONNABORTED, EINTR, ...: all transient from the
                // listener's point of view. Back off and retry; only a
                // shutdown request ends the loop.
                errors.fetch_add(1, Ordering::Relaxed);
                clock.sleep(SimDuration::from_duration(backoff));
                backoff = next_accept_backoff(backoff);
            }
        }
    }
}

/// One service pass: read whatever arrived within `read_timeout`, serve
/// every complete request, report whether the connection stays alive.
///
/// A [`HandlerOutcome::Park`] here blocks the worker on the hub's condvar
/// for up to `max_wait` — the workers backend's documented degradation:
/// semantics match the epoll backends (same wake key, same timeout
/// fallback), but a parked poll pins one worker thread for its wait.
/// The wait is stop-aware, so shutdown is never held up by parked polls.
fn service_connection(
    conn: &mut Conn,
    handler: &Handler,
    read_timeout: Duration,
    hub: &ParkHub,
    clock: &Clock,
    queue: &ConnQueue,
    overload: &OverloadCtx,
) -> ConnFate {
    if conn.stream.set_read_timeout(Some(read_timeout)).is_err() {
        return ConnFate::Close;
    }
    let cfg = &overload.config;
    let counters = &overload.counters;
    let mut buf = [0u8; 16 * 1024];
    // Drain reads until the socket has nothing more for us this pass; the
    // first empty read rotates the connection so one chatty client cannot
    // pin a worker.
    loop {
        // Test-only fault hook (inert in production builds): an armed
        // Read fault behaves exactly like the kernel failing the call.
        let read = match rcb_util::fault::take(rcb_util::fault::Op::Read) {
            Some(e) => Err(e),
            None => conn.stream.read(&mut buf),
        };
        match read {
            Ok(0) => return ConnFate::Close, // client closed
            Ok(n) => {
                conn.parser.feed(&buf[..n]);
                conn.last_activity = clock.now();
                loop {
                    match conn.parser.next_request() {
                        Ok(Some(req)) => {
                            let close = req.wants_close();
                            // Admission control: over the high-water mark
                            // the prefab shed reply answers instead of
                            // the handler ever running.
                            if queue.len() >= cfg.queue_high_water {
                                counters.requests_shed.fetch_add(1, Ordering::Relaxed);
                                let resp = overload.shed.next();
                                if write_response_to(&mut conn.stream, &resp).is_err()
                                    || conn.stream.flush().is_err()
                                {
                                    return ConnFate::Close;
                                }
                                if close {
                                    return ConnFate::Close;
                                }
                                continue;
                            }
                            let (outcome, panicked) = invoke_handler(handler, req);
                            let resp = match outcome {
                                HandlerOutcome::Respond(resp) => resp,
                                HandlerOutcome::Park(park) => {
                                    if hub.try_admit_park(cfg.max_parked) {
                                        let deadline =
                                            clock.now() + SimDuration::from_duration(park.max_wait);
                                        let stopped = || queue.stopped();
                                        let woken = hub.wait_until(
                                            park.channel,
                                            park.wait_key,
                                            deadline,
                                            clock,
                                            &stopped,
                                        );
                                        hub.release_park();
                                        if woken {
                                            (park.on_wake)()
                                        } else {
                                            (park.on_timeout)()
                                        }
                                    } else {
                                        // Park cap reached: degrade to the
                                        // immediate empty-poll reply.
                                        (park.on_timeout)()
                                    }
                                }
                            };
                            // Zero-copy send: prefab images and shared
                            // bodies go to the socket from their own
                            // storage, never through a scratch buffer.
                            if let Err(e) = write_response_to(&mut conn.stream, &resp)
                                .and_then(|()| conn.stream.flush())
                            {
                                if matches!(
                                    e.kind(),
                                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                                ) {
                                    counters
                                        .write_stall_timeouts
                                        .fetch_add(1, Ordering::Relaxed);
                                }
                                return ConnFate::Close;
                            }
                            if close || panicked {
                                return ConnFate::Close;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            let reason = conn
                                .parser
                                .reject_reason()
                                .unwrap_or(ParseReject::Malformed);
                            counters.count_reject(reason);
                            let resp = reject_response(reason);
                            let _ = write_response_to(&mut conn.stream, &resp);
                            let _ = conn.stream.flush();
                            return ConnFate::Close;
                        }
                    }
                }
                conn.partial_since = if conn.parser.buffered() > 0 {
                    conn.partial_since.or(Some(conn.last_activity))
                } else {
                    None
                };
            }
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle this pass: enforce the lifecycle guards before
                // rotating. A buffered partial request is on the (short)
                // slowloris clock; a clean idle keep-alive is on the
                // (long) idle clock.
                let now = clock.now();
                if let Some(since) = conn.partial_since {
                    if now >= since + SimDuration::from_duration(cfg.header_read_timeout) {
                        counters.header_timeouts.fetch_add(1, Ordering::Relaxed);
                        return ConnFate::Close;
                    }
                } else if now >= conn.last_activity + SimDuration::from_duration(cfg.idle_timeout) {
                    counters.idle_timeouts.fetch_add(1, Ordering::Relaxed);
                    return ConnFate::Close;
                }
                return ConnFate::Keep; // idle: rotate
            }
            Err(_) => return ConnFate::Close,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::send_request;
    use crate::message::{Request, Status};
    use std::net::TcpStream;
    use std::time::Instant;

    fn echo_handler() -> Handler {
        handler_fn(|req: Request| {
            Response::with_body(
                Status::OK,
                "text/plain",
                format!("{} {}", req.method, req.target).into_bytes(),
            )
        })
    }

    /// Every backend compiled in on this target — the shared-behaviour
    /// tests below run once per entry. The sharded entry pins an explicit
    /// shard count so coverage does not degenerate to one loop on
    /// single-core CI machines.
    fn backends() -> Vec<ServerBackend> {
        if EPOLL_SUPPORTED {
            vec![
                ServerBackend::Workers,
                ServerBackend::Epoll,
                ServerBackend::EpollSharded(2),
            ]
        } else {
            vec![ServerBackend::Workers]
        }
    }

    fn bind_backend(backend: ServerBackend, handler: Handler) -> HttpServer {
        HttpServer::bind_with(
            "127.0.0.1:0",
            handler,
            ServerConfig::builder().backend(backend).build(),
        )
        .unwrap()
    }

    #[test]
    fn env_and_label_roundtrip() {
        assert_eq!(
            ServerBackend::parse("workers").unwrap(),
            ServerBackend::Workers
        );
        assert_eq!(ServerBackend::parse("EPOLL").unwrap(), ServerBackend::Epoll);
        assert_eq!(
            ServerBackend::parse(" epoll ").unwrap(),
            ServerBackend::Epoll
        );
        assert_eq!(
            ServerBackend::parse("epoll-sharded").unwrap(),
            ServerBackend::EpollSharded(0),
            "bare sharded form is auto"
        );
        assert_eq!(
            ServerBackend::parse("Epoll-Sharded:4").unwrap(),
            ServerBackend::EpollSharded(4)
        );
        // Unknown names are hard errors carrying the accepted grammar,
        // never a silent workers fallback.
        for bad in ["epoll-sharded:0", "epoll-sharded:x", "tokio", ""] {
            let err = ServerBackend::parse(bad).unwrap_err();
            assert!(
                err.to_string().contains("epoll-sharded:<n>"),
                "{bad:?}: error must quote the grammar, got {err}"
            );
        }
        for b in backends() {
            // The label drops any explicit shard count, so roundtrip on
            // the label, not the value.
            assert_eq!(
                ServerBackend::parse(b.label())
                    .map(ServerBackend::label)
                    .ok(),
                Some(b.label())
            );
            assert_eq!(b.to_string(), b.label());
            assert_eq!(b.effective(), b, "compiled-in backends are effective");
        }
    }

    #[test]
    fn shard_count_resolution() {
        // Explicit counts win outright; non-sharded backends are one loop.
        assert_eq!(ServerBackend::EpollSharded(3).shard_count(), 3);
        assert_eq!(ServerBackend::Workers.shard_count(), 1);
        assert_eq!(ServerBackend::Epoll.shard_count(), 1);
        // Auto resolves to *something* positive (env or cores), and
        // `resolved()` folds it into an explicit variant.
        if EPOLL_SUPPORTED {
            let auto = ServerBackend::EpollSharded(0).shard_count();
            assert!(auto >= 1);
            assert_eq!(
                ServerBackend::EpollSharded(0).resolved(),
                ServerBackend::EpollSharded(auto)
            );
            assert_eq!(
                ServerBackend::EpollSharded(5).resolved(),
                ServerBackend::EpollSharded(5)
            );
        } else {
            assert_eq!(
                ServerBackend::EpollSharded(0).resolved(),
                ServerBackend::Workers
            );
        }
    }

    #[test]
    fn sharded_server_reports_resolved_backend_and_spread() {
        if !EPOLL_SUPPORTED {
            return;
        }
        let mut server = bind_backend(ServerBackend::EpollSharded(3), echo_handler());
        assert_eq!(server.backend(), ServerBackend::EpollSharded(3));
        assert_eq!(server.shards(), 3);
        let addr = server.addr().to_string();
        // Six sequential connections land two per shard (round-robin).
        for i in 0..6 {
            let resp = send_request(&addr, &Request::get(format!("/s{i}"))).unwrap();
            assert_eq!(resp.body_str(), format!("GET /s{i}"));
        }
        let stats = server.stats();
        assert_eq!(stats.shards, 3);
        assert_eq!(stats.connections_accepted, 6);
        assert_eq!(stats.connections_per_shard, vec![2, 2, 2]);
        server.shutdown();
    }

    #[test]
    fn serves_single_request() {
        for backend in backends() {
            let mut server = bind_backend(backend, echo_handler());
            assert_eq!(server.backend(), backend);
            let addr = server.addr();
            let resp = send_request(&addr.to_string(), &Request::get("/hello")).unwrap();
            assert_eq!(resp.status, Status::OK, "{backend}");
            assert_eq!(resp.body_str(), "GET /hello", "{backend}");
            server.shutdown();
        }
    }

    #[test]
    fn serves_keepalive_sequence() {
        for backend in backends() {
            let mut server = bind_backend(backend, echo_handler());
            let addr = server.addr().to_string();
            let mut stream = TcpStream::connect(&addr).unwrap();
            for i in 0..3 {
                let req = Request::get(format!("/r{i}"));
                stream
                    .write_all(&crate::serialize::serialize_request(&req))
                    .unwrap();
                let resp = crate::client::read_response(&mut stream).unwrap();
                assert_eq!(resp.body_str(), format!("GET /r{i}"), "{backend}");
            }
            server.shutdown();
        }
    }

    #[test]
    fn concurrent_clients() {
        for backend in backends() {
            let mut server = bind_backend(backend, echo_handler());
            let addr = server.addr().to_string();
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let addr = addr.clone();
                    std::thread::spawn(move || {
                        let resp = send_request(&addr, &Request::get(format!("/c{i}"))).unwrap();
                        assert_eq!(resp.body_str(), format!("GET /c{i}"));
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            server.shutdown();
        }
    }

    #[test]
    fn more_connections_than_workers_all_serviced() {
        // 2 workers (or dispatch threads), 12 persistent clients, several
        // keep-alive requests each: both backends must multiplex, not
        // starve (the original design used a thread per connection;
        // neither backend can).
        for backend in backends() {
            let mut server = HttpServer::bind_with(
                "127.0.0.1:0",
                echo_handler(),
                ServerConfig::builder()
                    .backend(backend)
                    .workers(2)
                    .queue_capacity(64)
                    .build(),
            )
            .unwrap();
            let addr = server.addr().to_string();
            let handles: Vec<_> = (0..12)
                .map(|i| {
                    let addr = addr.clone();
                    std::thread::spawn(move || {
                        let mut conn = crate::client::HttpConnection::connect(&addr).unwrap();
                        for j in 0..4 {
                            let resp = conn
                                .round_trip(&Request::get(format!("/c{i}/r{j}")))
                                .unwrap();
                            assert_eq!(resp.body_str(), format!("GET /c{i}/r{j}"));
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            server.shutdown();
        }
    }

    #[test]
    fn malformed_request_gets_400() {
        for backend in backends() {
            let mut server = bind_backend(backend, echo_handler());
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
            let resp = crate::client::read_response(&mut stream).unwrap();
            assert_eq!(resp.status, Status::BAD_REQUEST, "{backend}");
            // Both backends close after answering a parse error.
            let mut rest = Vec::new();
            stream.read_to_end(&mut rest).unwrap();
            assert!(rest.is_empty(), "{backend}: connection should close");
            server.shutdown();
        }
    }

    #[test]
    fn park_hub_wait_semantics() {
        let clock = Clock::wall();
        let hub = ParkHub::default();
        assert_eq!(hub.published(), 0);
        let never = || false;
        // Already-published keys return immediately.
        hub.publish(5);
        assert!(
            hub.wait_until(0, 4, clock.now(), &clock, &never),
            "5 > 4: instant"
        );
        // Waiting on the current key times out (nothing newer yet).
        let t0 = Instant::now();
        let deadline = clock.now() + SimDuration::from_millis(30);
        assert!(!hub.wait_until(0, 5, deadline, &clock, &never));
        assert!(t0.elapsed() >= Duration::from_millis(25));
        // The mark is monotonic: stale publishes never move it back.
        hub.publish(3);
        assert_eq!(hub.published(), 5);
        // A stop request ends the wait early as a timeout.
        let stopped = || true;
        let t0 = Instant::now();
        let deadline = clock.now() + SimDuration::from_secs(10);
        assert!(!hub.wait_until(0, 5, deadline, &clock, &stopped));
        assert!(t0.elapsed() < Duration::from_secs(1));
        // A concurrent publish wakes a blocked waiter.
        let hub = Arc::new(ParkHub::default());
        let publisher = {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                hub.publish(1);
            })
        };
        let deadline = clock.now() + SimDuration::from_secs(5);
        assert!(hub.wait_until(0, 0, deadline, &clock, &never));
        publisher.join().unwrap();
    }

    #[test]
    fn park_hub_channels_are_isolated() {
        let clock = Clock::wall();
        let hub = ParkHub::default();
        let never = || false;
        // A publish on one channel is invisible to every other channel
        // (including the default channel 0).
        hub.publish_on(7, 3);
        assert_eq!(hub.published_on(7), 3);
        assert_eq!(hub.published_on(8), 0);
        assert_eq!(hub.published(), 0);
        assert!(hub.wait_until(7, 2, clock.now(), &clock, &never), "3 > 2");
        let deadline = clock.now() + SimDuration::from_millis(20);
        assert!(
            !hub.wait_until(8, 0, deadline, &clock, &never),
            "channel 8 saw nothing"
        );
        // publish_on(0, ..) is exactly publish(..).
        hub.publish_on(0, 9);
        assert_eq!(hub.published(), 9);
        // Per-channel marks are monotonic too.
        hub.publish_on(7, 1);
        assert_eq!(hub.published_on(7), 3);
        // Closing a channel resolves waits as timeouts — immediately,
        // even with a far-off deadline — and a concurrent close wakes a
        // blocked waiter.
        hub.close_channel(7);
        let deadline = clock.now() + SimDuration::from_secs(30);
        let t0 = Instant::now();
        assert!(!hub.wait_until(7, 0, deadline, &clock, &never));
        assert!(t0.elapsed() < Duration::from_secs(1));
        let hub = Arc::new(ParkHub::default());
        hub.publish_on(5, 1);
        let closer = {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                hub.close_channel(5);
            })
        };
        let deadline = clock.now() + SimDuration::from_secs(30);
        assert!(!hub.wait_until(5, 1, deadline, &clock, &never));
        closer.join().unwrap();
        // Forgetting the tombstone resets the channel to "unpublished,
        // open": a straggler park waits out its own deadline.
        hub.forget_channel(5);
        assert_eq!(hub.published_on(5), 0);
        let deadline = clock.now() + SimDuration::from_millis(20);
        assert!(!hub.wait_until(5, 0, deadline, &clock, &never));
        // Channel 0 never closes.
        hub.close_channel(0);
        hub.publish(1);
        assert!(hub.wait_until(0, 0, clock.now(), &clock, &never));
    }

    #[test]
    fn park_hub_wait_is_clock_driven_under_virtual_time() {
        // A parked wait under a virtual clock ignores wall time entirely:
        // it times out the moment virtual time crosses the deadline and
        // not before, no matter how long the wall waits.
        let (clock, vc) = Clock::new_virtual();
        let hub = Arc::new(ParkHub::default());
        {
            let hub = Arc::clone(&hub);
            clock.on_advance(Box::new(move || hub.poke()));
        }
        let waiter = {
            let hub = Arc::clone(&hub);
            let clock = clock.clone();
            std::thread::spawn(move || {
                let deadline = SimTime::from_secs(30);
                hub.wait_until(0, 0, deadline, &clock, &|| false)
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "frozen clock never times out");
        vc.advance_to(SimTime::from_secs(29));
        std::thread::sleep(Duration::from_millis(10));
        assert!(!waiter.is_finished(), "deadline not reached yet");
        vc.advance_to(SimTime::from_secs(31));
        assert!(!waiter.join().unwrap(), "virtual deadline = timeout");
        // And a publish wakes a virtual waiter without any advance.
        let waker = {
            let hub = Arc::clone(&hub);
            let clock = clock.clone();
            std::thread::spawn(move || {
                hub.wait_until(0, 7, SimTime::from_secs(3600), &clock, &|| false)
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        hub.publish(8);
        assert!(waker.join().unwrap(), "publish wakes without advancing");
    }

    #[test]
    fn parked_poll_wakes_on_publish_every_backend() {
        // A handler that parks /wait on key 0 and answers /publish by
        // publishing key 1: the parked response must carry the bytes its
        // on_wake closure produced, on all three backends.
        for backend in backends() {
            let config = ServerConfig::builder().backend(backend).build();
            let hub = Arc::clone(&config.park_hub);
            let handler: Handler = Arc::new(move |req: Request| {
                if req.path() == "/wait" {
                    HandlerOutcome::Park(Park {
                        channel: 0,
                        wait_key: 0,
                        max_wait: Duration::from_secs(5),
                        on_wake: Box::new(|| {
                            Response::with_body(Status::OK, "text/plain", b"woken".to_vec())
                        }),
                        on_timeout: Box::new(|| {
                            Response::with_body(Status::OK, "text/plain", b"timeout".to_vec())
                        }),
                    })
                } else {
                    Response::with_body(Status::OK, "text/plain", b"ok".to_vec()).into()
                }
            });
            let mut server =
                HttpServer::bind_with("127.0.0.1:0", Arc::clone(&handler), config).unwrap();
            let addr = server.addr().to_string();
            let waiter = {
                let addr = addr.clone();
                std::thread::spawn(move || send_request(&addr, &Request::get("/wait")).unwrap())
            };
            std::thread::sleep(Duration::from_millis(50));
            hub.publish(1);
            let resp = waiter.join().unwrap();
            assert_eq!(resp.body_str(), "woken", "{backend}");
            server.shutdown();
        }
    }

    #[test]
    fn parked_poll_times_out_to_fallback_every_backend() {
        for backend in backends() {
            let handler: Handler = Arc::new(move |_req: Request| {
                HandlerOutcome::Park(Park {
                    channel: 0,
                    wait_key: 0,
                    max_wait: Duration::from_millis(40),
                    on_wake: Box::new(|| {
                        Response::with_body(Status::OK, "text/plain", b"woken".to_vec())
                    }),
                    on_timeout: Box::new(|| {
                        Response::with_body(Status::OK, "text/plain", b"timeout".to_vec())
                    }),
                })
            });
            let mut server = HttpServer::bind_with(
                "127.0.0.1:0",
                Arc::clone(&handler),
                ServerConfig::builder().backend(backend).build(),
            )
            .unwrap();
            let addr = server.addr().to_string();
            let t0 = Instant::now();
            let resp = send_request(&addr, &Request::get("/wait")).unwrap();
            assert_eq!(resp.body_str(), "timeout", "{backend}");
            assert!(
                t0.elapsed() >= Duration::from_millis(40),
                "{backend}: answered before the park deadline"
            );
            server.shutdown();
        }
    }

    #[test]
    fn accept_backoff_doubles_to_ceiling() {
        let mut b = ACCEPT_BACKOFF_START;
        let mut seen = vec![b];
        for _ in 0..12 {
            b = next_accept_backoff(b);
            seen.push(b);
        }
        assert!(seen.windows(2).all(|w| w[1] >= w[0]), "monotone");
        assert_eq!(*seen.last().unwrap(), ACCEPT_BACKOFF_MAX, "capped");
        assert_eq!(seen[1], ACCEPT_BACKOFF_START * 2);
    }

    #[test]
    fn survives_connection_churn() {
        // Open-and-drop many sockets quickly (aborted connections surface
        // as transient conditions on some platforms); the listener must
        // still serve afterwards.
        for backend in backends() {
            let mut server = bind_backend(backend, echo_handler());
            let addr = server.addr().to_string();
            for _ in 0..50 {
                let s = TcpStream::connect(&addr).unwrap();
                drop(s);
            }
            let resp = send_request(&addr, &Request::get("/alive")).unwrap();
            assert_eq!(resp.body_str(), "GET /alive", "{backend}");
            server.shutdown();
        }
    }

    #[test]
    fn connection_close_honored() {
        for backend in backends() {
            let mut server = bind_backend(backend, echo_handler());
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            let req = Request::get("/bye").with_header("Connection", "close");
            stream
                .write_all(&crate::serialize::serialize_request(&req))
                .unwrap();
            let resp = crate::client::read_response(&mut stream).unwrap();
            assert_eq!(resp.body_str(), "GET /bye", "{backend}");
            let mut rest = Vec::new();
            stream.read_to_end(&mut rest).unwrap();
            assert!(rest.is_empty(), "{backend}: server should close");
            server.shutdown();
        }
    }

    #[test]
    fn mid_request_disconnect_keeps_serving() {
        // A client that dies halfway through a request must not wedge
        // either backend; the next client is served normally.
        for backend in backends() {
            let mut server = bind_backend(backend, echo_handler());
            let addr = server.addr().to_string();
            {
                let mut stream = TcpStream::connect(&addr).unwrap();
                stream
                    .write_all(b"POST /poll HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial")
                    .unwrap();
                // Dropped with 93 body bytes owed.
            }
            let resp = send_request(&addr, &Request::get("/next")).unwrap();
            assert_eq!(resp.body_str(), "GET /next", "{backend}");
            server.shutdown();
        }
    }

    #[test]
    fn panicking_handler_costs_500_not_a_thread() {
        // A handler panic must answer 500-and-close — and the server
        // (worker pool or dispatch pool) must keep serving afterwards
        // with its full thread complement. `workers: 1` makes any lost
        // thread immediately fatal to the follow-up requests.
        let handler: Handler = handler_fn(|req: Request| {
            if req.path() == "/panic" {
                panic!("handler blew up");
            }
            Response::with_body(Status::OK, "text/plain", req.target.into_bytes())
        });
        // The unwinds below print panic backtraces to stderr by design.
        for backend in backends() {
            let mut server = HttpServer::bind_with(
                "127.0.0.1:0",
                Arc::clone(&handler),
                ServerConfig::builder().backend(backend).workers(1).build(),
            )
            .unwrap();
            let addr = server.addr().to_string();
            for _ in 0..3 {
                let mut stream = TcpStream::connect(&addr).unwrap();
                stream
                    .write_all(&crate::serialize::serialize_request(&Request::get(
                        "/panic",
                    )))
                    .unwrap();
                let resp = crate::client::read_response(&mut stream).unwrap();
                assert_eq!(resp.status, Status::INTERNAL, "{backend}");
                let mut rest = Vec::new();
                stream.read_to_end(&mut rest).unwrap();
                assert!(rest.is_empty(), "{backend}: connection closes after panic");
            }
            let resp = send_request(&addr, &Request::get("/alive")).unwrap();
            assert_eq!(resp.body_str(), "/alive", "{backend}: pool survived");
            server.shutdown();
        }
    }
}
