//! A small threaded TCP HTTP server.
//!
//! This is the real-socket face of RCB-Agent: "a co-browsing host starts
//! running RCB-Agent on the host browser with an open TCP port (e.g., 3000)"
//! (paper §3.1, step 1). The server accepts connections, runs the
//! incremental parser per connection, and dispatches complete requests to a
//! shared handler. Keep-alive is supported; a connection closes on parse
//! error or client close.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rcb_util::Result;

use crate::message::{Request, Response};
use crate::parse::RequestParser;
use crate::serialize::serialize_response;

/// The request handler type: shared across connection threads.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// A running HTTP server; dropping it (or calling [`HttpServer::shutdown`])
/// stops the accept loop and joins worker threads.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// serving `handler` on a background accept thread.
    pub fn bind(addr: &str, handler: Handler) -> Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let mut workers: Vec<JoinHandle<()>> = Vec::new();
            while !stop2.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let handler = Arc::clone(&handler);
                        let stop3 = Arc::clone(&stop2);
                        workers.push(std::thread::spawn(move || {
                            let _ = serve_connection(stream, handler, stop3);
                        }));
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
                workers.retain(|w| !w.is_finished());
            }
            for w in workers {
                let _ = w.join();
            }
        });
        Ok(HttpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(
    mut stream: TcpStream,
    handler: Handler,
    stop: Arc<AtomicBool>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut parser = RequestParser::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // client closed
            Ok(n) => {
                parser.feed(&buf[..n]);
                loop {
                    match parser.next_request() {
                        Ok(Some(req)) => {
                            let close = req
                                .headers
                                .get("connection")
                                .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                            let resp = handler(req);
                            stream.write_all(&serialize_response(&resp))?;
                            stream.flush()?;
                            if close {
                                return Ok(());
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            let resp = Response::error(
                                crate::message::Status::BAD_REQUEST,
                                "malformed request",
                            );
                            let _ = stream.write_all(&serialize_response(&resp));
                            return Ok(());
                        }
                    }
                }
            }
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::send_request;
    use crate::message::{Request, Status};

    fn echo_handler() -> Handler {
        Arc::new(|req: Request| {
            Response::with_body(
                Status::OK,
                "text/plain",
                format!("{} {}", req.method, req.target).into_bytes(),
            )
        })
    }

    #[test]
    fn serves_single_request() {
        let mut server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let addr = server.addr();
        let resp = send_request(&addr.to_string(), &Request::get("/hello")).unwrap();
        assert_eq!(resp.status, Status::OK);
        assert_eq!(resp.body_str(), "GET /hello");
        server.shutdown();
    }

    #[test]
    fn serves_keepalive_sequence() {
        let mut server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let addr = server.addr().to_string();
        let mut stream = TcpStream::connect(&addr).unwrap();
        for i in 0..3 {
            let req = Request::get(format!("/r{i}"));
            stream
                .write_all(&crate::serialize::serialize_request(&req))
                .unwrap();
            let resp = crate::client::read_response(&mut stream).unwrap();
            assert_eq!(resp.body_str(), format!("GET /r{i}"));
        }
        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let mut server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let addr = server.addr().to_string();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let resp =
                        send_request(&addr, &Request::get(format!("/c{i}"))).unwrap();
                    assert_eq!(resp.body_str(), format!("GET /c{i}"));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn malformed_request_gets_400() {
        let mut server = HttpServer::bind("127.0.0.1:0", echo_handler()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let resp = crate::client::read_response(&mut stream).unwrap();
        assert_eq!(resp.status, Status::BAD_REQUEST);
        server.shutdown();
    }
}
