//! The TCP HTTP server: two backends behind one [`Handler`] interface.
//!
//! This is the real-socket face of RCB-Agent: "a co-browsing host starts
//! running RCB-Agent on the host browser with an open TCP port (e.g., 3000)"
//! (paper §3.1, step 1). Two interchangeable backends serve the same
//! handler, selected by [`ServerConfig::backend`] (default from the
//! `RCB_SERVER_BACKEND` environment variable):
//!
//! * [`ServerBackend::Workers`] — the bounded worker pool defined in this
//!   module: connections are accepted onto a bounded queue and multiplexed
//!   across a fixed pool of worker threads; each worker pops a connection,
//!   services whatever complete requests have arrived (keep-alive
//!   supported), and rotates the connection back onto the queue. Simple
//!   and portable; concurrency is capped by the worker count.
//! * [`ServerBackend::Epoll`] — the event-driven backend in
//!   [`crate::epoll`] (Linux): nonblocking sockets on one epoll event
//!   loop, handler calls offloaded to a small dispatch pool, connection
//!   ceiling set by the fd limit instead of the thread count.
//!
//! A connection closes on parse error, client close, or
//! `Connection: close` under either backend, and both keep the zero-copy
//! prefab/vectored write path.
//!
//! The worker backend's accept loop never dies on a transient `accept(2)`
//! error (EMFILE under load, ECONNABORTED, EINTR, ...): it backs off
//! exponentially and retries, exiting only on shutdown. Before this design
//! a single such error permanently killed the listener mid-session. (The
//! epoll backend gets the same resilience by muting the listener's
//! registration for a backoff window.)

use std::collections::VecDeque;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rcb_util::Result;

use crate::message::{Request, Response, Status};
use crate::parse::RequestParser;
use crate::serialize::write_response_to;

/// Whether the event-driven epoll backend is compiled in on this target
/// (the platform condition itself lives on the module declarations in
/// `lib.rs`; each `epoll` module variant reports its own support).
pub const EPOLL_SUPPORTED: bool = crate::epoll::SUPPORTED;

/// The request handler type: shared across worker/dispatch threads.
pub type Handler = Arc<dyn Fn(Request) -> Response + Send + Sync>;

/// Runs the handler with unwind protection, so a panicking handler costs
/// the client a 500-and-close instead of costing the server a thread
/// (workers backend) or wedging the connection forever (epoll backend,
/// whose dispatch threads must survive to produce a completion). Returns
/// the response and whether the connection must close.
pub(crate) fn invoke_handler(handler: &Handler, req: Request) -> (Response, bool) {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(req))) {
        Ok(resp) => (resp, false),
        Err(_) => (Response::error(Status::INTERNAL, "handler panicked"), true),
    }
}

/// Which connection-servicing engine a server runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerBackend {
    /// Bounded worker pool: one blocking thread services one connection at
    /// a time; connections rotate through a queue.
    Workers,
    /// Event-driven epoll loop (Linux): every connection nonblocking on
    /// one loop thread, handler calls on a small dispatch pool. Falls back
    /// to [`ServerBackend::Workers`] where epoll is not compiled in.
    Epoll,
}

impl ServerBackend {
    /// The environment variable [`ServerBackend::from_env`] consults —
    /// also the knob the CI matrix sets per leg.
    pub const ENV_VAR: &'static str = "RCB_SERVER_BACKEND";

    /// Parses a backend name (`"workers"` / `"epoll"`, case-insensitive).
    pub fn parse(name: &str) -> Option<ServerBackend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "workers" => Some(ServerBackend::Workers),
            "epoll" => Some(ServerBackend::Epoll),
            _ => None,
        }
    }

    /// Reads `RCB_SERVER_BACKEND`; unset or unrecognized values select
    /// [`ServerBackend::Workers`] (unrecognized ones with a stderr note,
    /// so a typo in a CI matrix shows up in the logs).
    pub fn from_env() -> ServerBackend {
        match std::env::var(Self::ENV_VAR) {
            Ok(value) => Self::parse(&value).unwrap_or_else(|| {
                eprintln!(
                    "{}={value:?} not recognized (expected \"workers\" or \"epoll\"); \
                     using workers backend",
                    Self::ENV_VAR
                );
                ServerBackend::Workers
            }),
            Err(_) => ServerBackend::Workers,
        }
    }

    /// The backend that will actually run on this target: `Epoll` degrades
    /// to `Workers` where the epoll shims are not compiled in.
    pub fn effective(self) -> ServerBackend {
        match self {
            ServerBackend::Epoll if !EPOLL_SUPPORTED => ServerBackend::Workers,
            other => other,
        }
    }

    /// Stable lowercase name (matches what [`ServerBackend::parse`] takes).
    pub fn label(self) -> &'static str {
        match self {
            ServerBackend::Workers => "workers",
            ServerBackend::Epoll => "epoll",
        }
    }
}

impl fmt::Display for ServerBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Backend choice plus pool and queue sizing.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Which engine services connections. The default comes from the
    /// `RCB_SERVER_BACKEND` environment variable (workers when unset), so
    /// a whole test suite or benchmark can be switched without a code
    /// change.
    pub backend: ServerBackend,
    /// Worker threads (workers backend) or blocking-dispatch threads
    /// (epoll backend) — the handler-concurrency bound either way.
    pub workers: usize,
    /// Workers backend only: maximum connections admitted onto the queue
    /// before the accept loop applies backpressure (waits for capacity).
    /// The epoll backend has no such queue — its connection ceiling is
    /// the process fd limit.
    pub queue_capacity: usize,
    /// Workers backend only: how long a worker waits for bytes on one
    /// connection before rotating it back onto the queue. Smaller values
    /// lower worst-case latency under many idle connections; larger
    /// values reduce queue churn. (The epoll backend never waits on a
    /// single connection at all.)
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            backend: ServerBackend::from_env(),
            workers: 8,
            queue_capacity: 256,
            read_timeout: Duration::from_millis(2),
        }
    }
}

/// Initial backoff after a transient `accept(2)` error.
const ACCEPT_BACKOFF_START: Duration = Duration::from_millis(1);
/// Backoff ceiling — EMFILE storms retry twice a second, not in a hot loop.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(500);

/// Doubles an accept backoff up to the ceiling.
fn next_accept_backoff(current: Duration) -> Duration {
    (current * 2).min(ACCEPT_BACKOFF_MAX)
}

/// One live connection plus its incremental parse state, as it travels
/// between the queue and workers.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
}

/// What a worker decided after one service pass over a connection.
enum ConnFate {
    /// Still healthy: rotate back onto the queue.
    Keep,
    /// Closed by the client, by protocol (`Connection: close` / parse
    /// error), or by an I/O error: drop it.
    Close,
}

/// The bounded connection queue shared by the accept loop and workers.
struct ConnQueue {
    inner: Mutex<VecDeque<Conn>>,
    /// Signaled when a connection is queued (workers wait on this).
    readable: Condvar,
    /// Signaled when a pop frees capacity (the accept loop waits on this
    /// while applying backpressure).
    writable: Condvar,
    capacity: usize,
    stop: AtomicBool,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            inner: Mutex::new(VecDeque::new()),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity,
            stop: AtomicBool::new(false),
        }
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.readable.notify_all();
        self.writable.notify_all();
    }

    /// Admits a newly accepted connection, waiting while the queue is at
    /// capacity (backpressure on the accept loop). Returns `false` (and
    /// drops the connection) when shutting down.
    fn push_accepted(&self, conn: Conn) -> bool {
        let mut q = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while q.len() >= self.capacity {
            if self.stopped() {
                return false;
            }
            // Timeout only as a stop-flag safety net; pops signal
            // `writable` the moment capacity frees.
            let (guard, _) = self
                .writable
                .wait_timeout(q, Duration::from_millis(10))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q = guard;
        }
        if self.stopped() {
            return false;
        }
        q.push_back(conn);
        self.readable.notify_one();
        true
    }

    /// Rotates a serviced connection back. Never blocks: workers must not
    /// deadlock against a full queue, so rotation may transiently exceed
    /// capacity by at most the worker count.
    fn push_rotated(&self, conn: Conn) {
        if self.stopped() {
            return;
        }
        let mut q = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        q.push_back(conn);
        self.readable.notify_one();
    }

    /// Pops the next connection, waiting up to `timeout`.
    fn pop(&self, timeout: Duration) -> Option<Conn> {
        let mut q = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if q.is_empty() && !self.stopped() {
            let (guard, _) = self
                .readable
                .wait_timeout(q, timeout)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q = guard;
        }
        let conn = q.pop_front();
        if conn.is_some() && q.len() < self.capacity {
            self.writable.notify_one();
        }
        conn
    }
}

/// The worker-pool engine behind [`HttpServer`].
struct WorkerServer {
    queue: Arc<ConnQueue>,
    accept_errors: Arc<AtomicU64>,
    threads: Vec<JoinHandle<()>>,
}

/// The engine actually running behind an [`HttpServer`].
enum Engine {
    Workers(WorkerServer),
    Epoll(crate::epoll::EpollServer),
}

/// A running HTTP server; dropping it (or calling [`HttpServer::shutdown`])
/// stops accepting, drains in-flight work, and joins all threads.
pub struct HttpServer {
    addr: SocketAddr,
    backend: ServerBackend,
    engine: Engine,
}

impl HttpServer {
    /// Binds with the default configuration (see [`ServerConfig`] — the
    /// backend comes from `RCB_SERVER_BACKEND`).
    pub fn bind(addr: &str, handler: Handler) -> Result<HttpServer> {
        Self::bind_with(addr, handler, ServerConfig::default())
    }

    /// Binds to `addr` (use port 0 for an ephemeral port) and starts the
    /// configured backend's threads.
    pub fn bind_with(addr: &str, handler: Handler, config: ServerConfig) -> Result<HttpServer> {
        match config.backend.effective() {
            ServerBackend::Workers => Self::bind_workers(addr, handler, config),
            // On targets without the epoll shims this arm is dynamically
            // unreachable (`effective()` degrades Epoll to Workers) and
            // binds against the never-constructed stub module.
            ServerBackend::Epoll => {
                let server = crate::epoll::EpollServer::bind(addr, handler, &config)?;
                Ok(HttpServer {
                    addr: server.addr(),
                    backend: ServerBackend::Epoll,
                    engine: Engine::Epoll(server),
                })
            }
        }
    }

    fn bind_workers(addr: &str, handler: Handler, config: ServerConfig) -> Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let queue = Arc::new(ConnQueue::new(config.queue_capacity.max(1)));
        let accept_errors = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::with_capacity(config.workers + 1);

        let accept_queue = Arc::clone(&queue);
        let errors = Arc::clone(&accept_errors);
        threads.push(std::thread::spawn(move || {
            accept_loop(listener, accept_queue, errors);
        }));

        for _ in 0..config.workers.max(1) {
            let worker_queue = Arc::clone(&queue);
            let handler = Arc::clone(&handler);
            let read_timeout = config.read_timeout;
            threads.push(std::thread::spawn(move || {
                while !worker_queue.stopped() {
                    let Some(mut conn) = worker_queue.pop(Duration::from_millis(50)) else {
                        continue;
                    };
                    match service_connection(&mut conn, &handler, read_timeout) {
                        ConnFate::Keep => worker_queue.push_rotated(conn),
                        ConnFate::Close => {}
                    }
                }
            }));
        }

        Ok(HttpServer {
            addr: local,
            backend: ServerBackend::Workers,
            engine: Engine::Workers(WorkerServer {
                queue,
                accept_errors,
                threads,
            }),
        })
    }

    /// The bound socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The backend actually servicing connections (after any platform
    /// fallback from `Epoll` to `Workers`).
    pub fn backend(&self) -> ServerBackend {
        self.backend
    }

    /// Transient `accept(2)` errors survived so far (both backends retry
    /// them with backoff instead of dying).
    pub fn accept_errors(&self) -> u64 {
        match &self.engine {
            Engine::Workers(w) => w.accept_errors.load(Ordering::Relaxed),
            Engine::Epoll(e) => e.accept_errors(),
        }
    }

    /// Stops accepting, drains in-flight work, and joins all threads.
    pub fn shutdown(&mut self) {
        match &mut self.engine {
            Engine::Workers(w) => {
                w.queue.shutdown();
                for t in w.threads.drain(..) {
                    let _ = t.join();
                }
            }
            Engine::Epoll(e) => e.shutdown(),
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The accept loop: admit connections, survive transient errors.
fn accept_loop(listener: TcpListener, queue: Arc<ConnQueue>, errors: Arc<AtomicU64>) {
    let mut backoff = ACCEPT_BACKOFF_START;
    while !queue.stopped() {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = ACCEPT_BACKOFF_START;
                queue.push_accepted(Conn {
                    stream,
                    parser: RequestParser::new(),
                });
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // EMFILE, ECONNABORTED, EINTR, ...: all transient from the
                // listener's point of view. Back off and retry; only a
                // shutdown request ends the loop.
                errors.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff);
                backoff = next_accept_backoff(backoff);
            }
        }
    }
}

/// One service pass: read whatever arrived within `read_timeout`, serve
/// every complete request, report whether the connection stays alive.
fn service_connection(conn: &mut Conn, handler: &Handler, read_timeout: Duration) -> ConnFate {
    if conn.stream.set_read_timeout(Some(read_timeout)).is_err() {
        return ConnFate::Close;
    }
    let mut buf = [0u8; 16 * 1024];
    // Drain reads until the socket has nothing more for us this pass; the
    // first empty read rotates the connection so one chatty client cannot
    // pin a worker.
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => return ConnFate::Close, // client closed
            Ok(n) => {
                conn.parser.feed(&buf[..n]);
                loop {
                    match conn.parser.next_request() {
                        Ok(Some(req)) => {
                            let close = req.wants_close();
                            let (resp, panicked) = invoke_handler(handler, req);
                            // Zero-copy send: prefab images and shared
                            // bodies go to the socket from their own
                            // storage, never through a scratch buffer.
                            if write_response_to(&mut conn.stream, &resp).is_err()
                                || conn.stream.flush().is_err()
                            {
                                return ConnFate::Close;
                            }
                            if close || panicked {
                                return ConnFate::Close;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            let resp = Response::error(Status::BAD_REQUEST, "malformed request");
                            let _ = write_response_to(&mut conn.stream, &resp);
                            return ConnFate::Close;
                        }
                    }
                }
            }
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return ConnFate::Keep; // idle: rotate
            }
            Err(_) => return ConnFate::Close,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::send_request;
    use crate::message::{Request, Status};

    fn echo_handler() -> Handler {
        Arc::new(|req: Request| {
            Response::with_body(
                Status::OK,
                "text/plain",
                format!("{} {}", req.method, req.target).into_bytes(),
            )
        })
    }

    /// Every backend compiled in on this target — the shared-behaviour
    /// tests below run once per entry.
    fn backends() -> Vec<ServerBackend> {
        if EPOLL_SUPPORTED {
            vec![ServerBackend::Workers, ServerBackend::Epoll]
        } else {
            vec![ServerBackend::Workers]
        }
    }

    fn bind_backend(backend: ServerBackend, handler: Handler) -> HttpServer {
        HttpServer::bind_with(
            "127.0.0.1:0",
            handler,
            ServerConfig {
                backend,
                ..ServerConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn env_and_label_roundtrip() {
        assert_eq!(
            ServerBackend::parse("workers"),
            Some(ServerBackend::Workers)
        );
        assert_eq!(ServerBackend::parse("EPOLL"), Some(ServerBackend::Epoll));
        assert_eq!(ServerBackend::parse(" epoll "), Some(ServerBackend::Epoll));
        assert_eq!(ServerBackend::parse("tokio"), None);
        for b in backends() {
            assert_eq!(ServerBackend::parse(b.label()), Some(b));
            assert_eq!(b.to_string(), b.label());
            assert_eq!(b.effective(), b, "compiled-in backends are effective");
        }
    }

    #[test]
    fn serves_single_request() {
        for backend in backends() {
            let mut server = bind_backend(backend, echo_handler());
            assert_eq!(server.backend(), backend);
            let addr = server.addr();
            let resp = send_request(&addr.to_string(), &Request::get("/hello")).unwrap();
            assert_eq!(resp.status, Status::OK, "{backend}");
            assert_eq!(resp.body_str(), "GET /hello", "{backend}");
            server.shutdown();
        }
    }

    #[test]
    fn serves_keepalive_sequence() {
        for backend in backends() {
            let mut server = bind_backend(backend, echo_handler());
            let addr = server.addr().to_string();
            let mut stream = TcpStream::connect(&addr).unwrap();
            for i in 0..3 {
                let req = Request::get(format!("/r{i}"));
                stream
                    .write_all(&crate::serialize::serialize_request(&req))
                    .unwrap();
                let resp = crate::client::read_response(&mut stream).unwrap();
                assert_eq!(resp.body_str(), format!("GET /r{i}"), "{backend}");
            }
            server.shutdown();
        }
    }

    #[test]
    fn concurrent_clients() {
        for backend in backends() {
            let mut server = bind_backend(backend, echo_handler());
            let addr = server.addr().to_string();
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let addr = addr.clone();
                    std::thread::spawn(move || {
                        let resp = send_request(&addr, &Request::get(format!("/c{i}"))).unwrap();
                        assert_eq!(resp.body_str(), format!("GET /c{i}"));
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            server.shutdown();
        }
    }

    #[test]
    fn more_connections_than_workers_all_serviced() {
        // 2 workers (or dispatch threads), 12 persistent clients, several
        // keep-alive requests each: both backends must multiplex, not
        // starve (the original design used a thread per connection;
        // neither backend can).
        for backend in backends() {
            let mut server = HttpServer::bind_with(
                "127.0.0.1:0",
                echo_handler(),
                ServerConfig {
                    backend,
                    workers: 2,
                    queue_capacity: 64,
                    read_timeout: Duration::from_millis(2),
                },
            )
            .unwrap();
            let addr = server.addr().to_string();
            let handles: Vec<_> = (0..12)
                .map(|i| {
                    let addr = addr.clone();
                    std::thread::spawn(move || {
                        let mut conn = crate::client::HttpConnection::connect(&addr).unwrap();
                        for j in 0..4 {
                            let resp = conn
                                .round_trip(&Request::get(format!("/c{i}/r{j}")))
                                .unwrap();
                            assert_eq!(resp.body_str(), format!("GET /c{i}/r{j}"));
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            server.shutdown();
        }
    }

    #[test]
    fn malformed_request_gets_400() {
        for backend in backends() {
            let mut server = bind_backend(backend, echo_handler());
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
            let resp = crate::client::read_response(&mut stream).unwrap();
            assert_eq!(resp.status, Status::BAD_REQUEST, "{backend}");
            // Both backends close after answering a parse error.
            let mut rest = Vec::new();
            stream.read_to_end(&mut rest).unwrap();
            assert!(rest.is_empty(), "{backend}: connection should close");
            server.shutdown();
        }
    }

    #[test]
    fn accept_backoff_doubles_to_ceiling() {
        let mut b = ACCEPT_BACKOFF_START;
        let mut seen = vec![b];
        for _ in 0..12 {
            b = next_accept_backoff(b);
            seen.push(b);
        }
        assert!(seen.windows(2).all(|w| w[1] >= w[0]), "monotone");
        assert_eq!(*seen.last().unwrap(), ACCEPT_BACKOFF_MAX, "capped");
        assert_eq!(seen[1], ACCEPT_BACKOFF_START * 2);
    }

    #[test]
    fn survives_connection_churn() {
        // Open-and-drop many sockets quickly (aborted connections surface
        // as transient conditions on some platforms); the listener must
        // still serve afterwards.
        for backend in backends() {
            let mut server = bind_backend(backend, echo_handler());
            let addr = server.addr().to_string();
            for _ in 0..50 {
                let s = TcpStream::connect(&addr).unwrap();
                drop(s);
            }
            let resp = send_request(&addr, &Request::get("/alive")).unwrap();
            assert_eq!(resp.body_str(), "GET /alive", "{backend}");
            server.shutdown();
        }
    }

    #[test]
    fn connection_close_honored() {
        for backend in backends() {
            let mut server = bind_backend(backend, echo_handler());
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            let req = Request::get("/bye").with_header("Connection", "close");
            stream
                .write_all(&crate::serialize::serialize_request(&req))
                .unwrap();
            let resp = crate::client::read_response(&mut stream).unwrap();
            assert_eq!(resp.body_str(), "GET /bye", "{backend}");
            let mut rest = Vec::new();
            stream.read_to_end(&mut rest).unwrap();
            assert!(rest.is_empty(), "{backend}: server should close");
            server.shutdown();
        }
    }

    #[test]
    fn mid_request_disconnect_keeps_serving() {
        // A client that dies halfway through a request must not wedge
        // either backend; the next client is served normally.
        for backend in backends() {
            let mut server = bind_backend(backend, echo_handler());
            let addr = server.addr().to_string();
            {
                let mut stream = TcpStream::connect(&addr).unwrap();
                stream
                    .write_all(b"POST /poll HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial")
                    .unwrap();
                // Dropped with 93 body bytes owed.
            }
            let resp = send_request(&addr, &Request::get("/next")).unwrap();
            assert_eq!(resp.body_str(), "GET /next", "{backend}");
            server.shutdown();
        }
    }

    #[test]
    fn panicking_handler_costs_500_not_a_thread() {
        // A handler panic must answer 500-and-close — and the server
        // (worker pool or dispatch pool) must keep serving afterwards
        // with its full thread complement. `workers: 1` makes any lost
        // thread immediately fatal to the follow-up requests.
        let handler: Handler = Arc::new(|req: Request| {
            if req.path() == "/panic" {
                panic!("handler blew up");
            }
            Response::with_body(Status::OK, "text/plain", req.target.into_bytes())
        });
        // The unwinds below print panic backtraces to stderr by design.
        for backend in backends() {
            let mut server = HttpServer::bind_with(
                "127.0.0.1:0",
                Arc::clone(&handler),
                ServerConfig {
                    backend,
                    workers: 1,
                    ..ServerConfig::default()
                },
            )
            .unwrap();
            let addr = server.addr().to_string();
            for _ in 0..3 {
                let mut stream = TcpStream::connect(&addr).unwrap();
                stream
                    .write_all(&crate::serialize::serialize_request(&Request::get(
                        "/panic",
                    )))
                    .unwrap();
                let resp = crate::client::read_response(&mut stream).unwrap();
                assert_eq!(resp.status, Status::INTERNAL, "{backend}");
                let mut rest = Vec::new();
                stream.read_to_end(&mut rest).unwrap();
                assert!(rest.is_empty(), "{backend}: connection closes after panic");
            }
            let resp = send_request(&addr, &Request::get("/alive")).unwrap();
            assert_eq!(resp.body_str(), "/alive", "{backend}: pool survived");
            server.shutdown();
        }
    }
}
