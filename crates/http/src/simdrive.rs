//! Single-threaded, nonblocking server driver for the deterministic
//! world sim (pump mode).
//!
//! The threaded engines ([`crate::server`]) prove the production loops
//! run over the transport seam, but threads make replay nondeterministic.
//! [`SimDriver`] is the deterministic alternative: the same handler, the
//! same parser, the same park/wake/timeout semantics as the epoll
//! backend's slot machine — but advanced by explicit [`SimDriver::pump`]
//! calls from the scenario loop, with every read a nonblocking
//! [`rcb_sim::SimConn::try_read`] and every deadline measured on the
//! shared virtual clock. Park resolution mirrors the epoll engine's
//! ordering exactly (a published key beats a simultaneous timeout), so
//! behavior observed under the world sim transfers to the real backends.
//!
//! The scenario loop alternates:
//!
//! 1. `while driver.pump() {}` — serve everything currently servable;
//! 2. advance the virtual clock to the next event
//!    ([`rcb_sim::SimNet::next_event_time`] joined with
//!    [`SimDriver::next_park_deadline`]);
//!
//! which is the standard discrete-event shape: no sleeps, no condvars, no
//! wall time anywhere.

use rcb_sim::{SimConn, SimListener};
use rcb_util::{Clock, SimDuration, SimTime};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::message::Response;
use crate::parse::{ParseReject, RequestParser};
use crate::serialize::write_response_to;
use crate::server::{
    invoke_handler, reject_response, Handler, HandlerOutcome, OverloadCtx, ParkHub, ServerConfig,
    ServerStats,
};

/// A long-poll parked on a driver connection (the pump-mode analogue of
/// the epoll backend's `ParkedPoll`).
struct ParkedReq {
    /// The hub channel this park waits on (0 = the default channel; a
    /// session router parks each session on its own channel).
    channel: u64,
    wait_key: u64,
    deadline: SimTime,
    on_wake: Box<dyn FnOnce() -> Response + Send>,
    on_timeout: Box<dyn FnOnce() -> Response + Send>,
    /// Close once the eventual response is written (`Connection: close`
    /// on the parked request, or a panicking handler).
    close: bool,
}

/// One accepted connection's state: the fabric conn, its incremental
/// parser, an optional parked long-poll, and the guard clocks the
/// overload layer measures (same bookkeeping as the epoll slots).
struct DriverConn {
    conn: SimConn,
    parser: RequestParser,
    parked: Option<ParkedReq>,
    peer_closed: bool,
    /// Virtual instant of the last byte read (idle-timeout clock).
    last_activity: SimTime,
    /// Set while an incomplete request head/body sits buffered
    /// (slowloris clock); cleared when the parser drains.
    partial_since: Option<SimTime>,
}

/// What one service pass decided about a connection.
enum Fate {
    Keep,
    Close,
}

/// The pump-mode server: accepts from a [`SimListener`] and services every
/// connection with the shared [`Handler`], entirely nonblocking.
pub struct SimDriver {
    listener: SimListener,
    handler: Handler,
    hub: Arc<ParkHub>,
    clock: Clock,
    overload: Arc<OverloadCtx>,
    conns: Vec<DriverConn>,
    requests_served: u64,
    connections_accepted: u64,
}

impl SimDriver {
    /// Wraps `listener`; the park hub, clock, and overload limits come
    /// from `config` (the same fields the threaded engines use).
    pub fn new(listener: SimListener, handler: Handler, config: &ServerConfig) -> SimDriver {
        SimDriver {
            listener,
            handler,
            hub: Arc::clone(&config.park_hub),
            clock: config.clock.clone(),
            overload: OverloadCtx::new(config.overload.clone()),
            conns: Vec::new(),
            requests_served: 0,
            connections_accepted: 0,
        }
    }

    /// One service sweep: accept whatever has finished its handshake,
    /// resolve due parks, drain readable bytes, dispatch complete
    /// requests. Returns whether anything happened — the scenario loop
    /// pumps until `false` before advancing the clock.
    pub fn pump(&mut self) -> bool {
        let now = self.clock.now();
        let cfg = &self.overload.config;
        let mut progress = false;
        while let Ok(conn) = self.listener.try_accept() {
            self.conns.push(DriverConn {
                conn,
                parser: RequestParser::with_limits(cfg.max_header_bytes, cfg.max_body_bytes),
                parked: None,
                peer_closed: false,
                last_activity: now,
                partial_since: None,
            });
            self.connections_accepted += 1;
            progress = true;
        }
        let mut pass = PumpPass {
            handler: Arc::clone(&self.handler),
            hub: Arc::clone(&self.hub),
            overload: Arc::clone(&self.overload),
            now,
            admitted: 0,
            progress,
            served: 0,
        };
        self.conns.retain_mut(|dc| {
            let fate = service(dc, &mut pass);
            if matches!(fate, Fate::Close) && dc.parked.is_some() {
                // Closing with a poll still parked (fabric reset, guard
                // trip): give the park-cap slot back.
                pass.hub.release_park();
            }
            matches!(fate, Fate::Keep)
        });
        self.requests_served += pass.served;
        pass.progress
    }

    /// The soonest parked long-poll deadline, if any — the scenario loop
    /// folds this into its next-event computation so park timeouts fire
    /// even when the fabric is silent.
    pub fn next_park_deadline(&self) -> Option<SimTime> {
        self.conns
            .iter()
            .filter_map(|dc| dc.parked.as_ref())
            .map(|p| p.deadline)
            .min()
    }

    /// The soonest connection-guard deadline (header-read or idle), if
    /// any. Scenario loops that want guard trips to fire even when the
    /// fabric is otherwise silent fold this in alongside
    /// [`SimDriver::next_park_deadline`].
    pub fn next_guard_deadline(&self) -> Option<SimTime> {
        let cfg = &self.overload.config;
        self.conns
            .iter()
            .filter(|dc| dc.parked.is_none())
            .map(|dc| match dc.partial_since {
                Some(since) => since + SimDuration::from_duration(cfg.header_read_timeout),
                None => dc.last_activity + SimDuration::from_duration(cfg.idle_timeout),
            })
            .min()
    }

    /// Overload/guard counters in the same shape the threaded engines
    /// report, so world-sim scenarios can assert on server-side totals.
    pub fn server_stats(&self) -> ServerStats {
        let mut stats = ServerStats {
            connections_accepted: self.connections_accepted,
            ..ServerStats::default()
        };
        self.overload.fill_stats(&mut stats, &self.hub);
        stats
    }

    /// Live connections (accepted, not yet closed).
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// Long-polls currently parked.
    pub fn parked(&self) -> usize {
        self.conns.iter().filter(|dc| dc.parked.is_some()).count()
    }

    /// Requests answered so far (parked polls count on resolution).
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }
}

impl std::fmt::Debug for SimDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimDriver")
            .field("connections", &self.conns.len())
            .field("parked", &self.parked())
            .field("requests_served", &self.requests_served)
            .finish()
    }
}

/// Everything one [`SimDriver::pump`] sweep shares across connections:
/// the handler, the overload limits and counters, the virtual instant,
/// and the per-pump admission budget (the pump-mode analogue of the
/// threaded engines' dispatch-queue depth).
struct PumpPass {
    handler: Handler,
    hub: Arc<ParkHub>,
    overload: Arc<OverloadCtx>,
    now: SimTime,
    admitted: usize,
    progress: bool,
    served: u64,
}

/// One pass over one connection. Mirrors the worker/epoll state machine:
/// resolve a due park first (wake beats timeout, like
/// `LoopShard::service_parked`), then read, then dispatch in order —
/// a parked poll blocks dispatch of anything pipelined behind it — then
/// check the connection guards against the virtual clock.
fn service(dc: &mut DriverConn, pass: &mut PumpPass) -> Fate {
    let cfg = &pass.overload.config;
    let counters = &pass.overload.counters;
    if let Some(p) = dc.parked.take() {
        let (published, closed) = pass.hub.channel_status(p.channel);
        if closed || published > p.wait_key || pass.now >= p.deadline {
            pass.hub.release_park();
            let response = if !closed && published > p.wait_key {
                (p.on_wake)()
            } else {
                (p.on_timeout)()
            };
            pass.progress = true;
            pass.served += 1;
            dc.last_activity = pass.now;
            if write_response_to(&mut dc.conn, &response).is_err() || p.close {
                return Fate::Close;
            }
        } else {
            dc.parked = Some(p);
        }
    }
    let mut buf = [0u8; 16 * 1024];
    loop {
        match dc.conn.try_read(&mut buf) {
            Ok(0) => {
                dc.peer_closed = true;
                break;
            }
            Ok(n) => {
                dc.parser.feed(&buf[..n]);
                dc.last_activity = pass.now;
                pass.progress = true;
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(_) => return Fate::Close, // reset (partition)
        }
    }
    while dc.parked.is_none() {
        match dc.parser.next_request() {
            Ok(Some(req)) => {
                pass.progress = true;
                let close = req.wants_close();
                if pass.admitted >= cfg.queue_high_water {
                    // Over the admission budget for this sweep: shed with
                    // the prefab 503 instead of running the handler.
                    counters.requests_shed.fetch_add(1, Ordering::Relaxed);
                    let response = pass.overload.shed.next();
                    dc.last_activity = pass.now;
                    if write_response_to(&mut dc.conn, &response).is_err() || close {
                        return Fate::Close;
                    }
                    continue;
                }
                pass.admitted += 1;
                let (outcome, panicked) = invoke_handler(&pass.handler, req);
                match outcome {
                    HandlerOutcome::Respond(response) => {
                        pass.served += 1;
                        dc.last_activity = pass.now;
                        if write_response_to(&mut dc.conn, &response).is_err() || close || panicked
                        {
                            return Fate::Close;
                        }
                    }
                    HandlerOutcome::Park(park) => {
                        if pass.hub.try_admit_park(cfg.max_parked) {
                            dc.parked = Some(ParkedReq {
                                channel: park.channel,
                                wait_key: park.wait_key,
                                deadline: pass.now + SimDuration::from_duration(park.max_wait),
                                on_wake: park.on_wake,
                                on_timeout: park.on_timeout,
                                close: close || panicked,
                            });
                        } else {
                            // Park cap reached: degrade to the immediate
                            // empty-poll reply (byte-identical to a
                            // timed-out park).
                            pass.served += 1;
                            let response = (park.on_timeout)();
                            dc.last_activity = pass.now;
                            if write_response_to(&mut dc.conn, &response).is_err()
                                || close
                                || panicked
                            {
                                return Fate::Close;
                            }
                        }
                    }
                }
            }
            Ok(None) => break,
            Err(_) => {
                let reason = dc.parser.reject_reason().unwrap_or(ParseReject::Malformed);
                counters.count_reject(reason);
                let response = reject_response(reason);
                let _ = write_response_to(&mut dc.conn, &response);
                return Fate::Close;
            }
        }
    }
    dc.partial_since = if dc.parser.buffered() > 0 {
        dc.partial_since.or(Some(dc.last_activity))
    } else {
        None
    };
    if dc.parked.is_none() {
        if let Some(since) = dc.partial_since {
            if pass.now >= since + SimDuration::from_duration(cfg.header_read_timeout) {
                counters.header_timeouts.fetch_add(1, Ordering::Relaxed);
                return Fate::Close;
            }
        } else if pass.now >= dc.last_activity + SimDuration::from_duration(cfg.idle_timeout) {
            counters.idle_timeouts.fetch_add(1, Ordering::Relaxed);
            return Fate::Close;
        }
    }
    if dc.peer_closed && dc.parked.is_none() {
        return Fate::Close;
    }
    Fate::Keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::try_parse_response;
    use crate::message::{Request, Status};
    use crate::serialize::serialize_request;
    use crate::server::{handler_fn, Park};
    use rcb_sim::{LinkModel, LinkSpec, World};
    use std::io::Write;

    fn link() -> LinkModel {
        LinkModel::from_spec(LinkSpec::symmetric(
            100_000_000,
            SimDuration::from_millis(1),
        ))
    }

    /// Pump the driver and the fabric to quiescence, advancing the clock
    /// through fabric events and park deadlines.
    fn run(world: &World, driver: &mut SimDriver) {
        loop {
            while driver.pump() {}
            let next = match (world.next_event_time(), driver.next_park_deadline()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            match next {
                Some(t) if t > world.now() => world.advance_to(t),
                Some(_) => break, // deadline due now: one more pump round
                None => break,
            }
        }
        while driver.pump() {}
    }

    fn read_one(conn: &mut SimConn) -> Option<Response> {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match conn.try_read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
        }
        try_parse_response(&buf).unwrap().map(|(resp, _)| resp)
    }

    #[test]
    fn serves_requests_over_the_fabric_without_threads() {
        let world = World::new(21);
        let config = ServerConfig::builder().clock(world.clock()).build();
        let handler = handler_fn(|req: Request| {
            Response::with_body(Status::OK, "text/plain", req.target.into_bytes())
        });
        let mut driver = SimDriver::new(world.bind("host").unwrap(), handler, &config);
        let mut c1 = world.connect("p1", "host", link()).unwrap();
        let mut c2 = world.connect("p2", "host", link()).unwrap();
        c1.write_all(&serialize_request(&Request::get("/a")))
            .unwrap();
        c2.write_all(&serialize_request(&Request::get("/b")))
            .unwrap();
        run(&world, &mut driver);
        assert_eq!(read_one(&mut c1).unwrap().body_str(), "/a");
        assert_eq!(read_one(&mut c2).unwrap().body_str(), "/b");
        assert_eq!(driver.requests_served(), 2);
        assert_eq!(driver.connections(), 2, "keep-alive conns stay");
    }

    #[test]
    fn parked_poll_wakes_on_publish_and_times_out_on_virtual_deadline() {
        let world = World::new(22);
        let config = ServerConfig::builder().clock(world.clock()).build();
        let hub = Arc::clone(&config.park_hub);
        let handler_hub = Arc::clone(&hub);
        let handler: Handler = Arc::new(move |_req: Request| {
            HandlerOutcome::Park(Park {
                channel: 0,
                // Park on the *current* mark, like a real poll handler:
                // only keys published after this request wake it.
                wait_key: handler_hub.published(),
                max_wait: std::time::Duration::from_secs(5),
                on_wake: Box::new(|| {
                    Response::with_body(Status::OK, "text/plain", b"woken".to_vec())
                }),
                on_timeout: Box::new(|| {
                    Response::with_body(Status::OK, "text/plain", b"timeout".to_vec())
                }),
            })
        });
        let mut driver = SimDriver::new(world.bind("host").unwrap(), handler, &config);

        // First poll: published before the deadline -> "woken".
        let mut c1 = world.connect("p1", "host", link()).unwrap();
        c1.write_all(&serialize_request(&Request::get("/poll")))
            .unwrap();
        while world.next_event_time().is_some() {
            world.advance_to(world.next_event_time().unwrap());
            while driver.pump() {}
        }
        assert_eq!(driver.parked(), 1, "poll parked, no dispatch slot burned");
        hub.publish(1);
        run(&world, &mut driver);
        assert_eq!(read_one(&mut c1).unwrap().body_str(), "woken");

        // Second poll: nothing published -> virtual-deadline timeout, with
        // zero wall-clock waiting.
        let mut c2 = world.connect("p2", "host", link()).unwrap();
        c2.write_all(&serialize_request(&Request::get("/poll")))
            .unwrap();
        let before = world.now();
        run(&world, &mut driver);
        assert_eq!(read_one(&mut c2).unwrap().body_str(), "timeout");
        assert!(
            (world.now() - before).as_millis() >= 5_000,
            "timeout consumed virtual, not wall, time"
        );
    }
}
