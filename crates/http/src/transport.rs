//! The transport seam: real TCP or the seeded in-process fabric.
//!
//! Everything above this module — the workers engine, the client, the
//! core host — moves bytes through [`Conn`] and accepts through
//! [`Listener`], so the same production code paths run over a kernel
//! socket in deployment and over [`rcb_sim::SimNet`] in the deterministic
//! world sim. The enum (rather than a trait object) keeps the hot read
//! and write paths monomorphic and allocation-free; both variants expose
//! the same nonblocking-accept and read-timeout contract:
//!
//! * [`Listener::try_accept`] never blocks — `WouldBlock` means "nothing
//!   pending" on both the nonblocking `TcpListener` and the fabric;
//! * [`Conn`] reads block up to the configured read timeout and surface
//!   `WouldBlock`/`TimedOut` on expiry, exactly what the workers engine's
//!   rotate-on-idle loop expects.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use rcb_sim::{SimConn, SimListener};
use rcb_util::SimDuration;

/// A listening endpoint on either transport. Construct the TCP side with
/// [`Listener::bind_tcp`] (which flips the socket nonblocking, as
/// [`Listener::try_accept`] requires) or wrap an existing fabric listener
/// with `From<SimListener>`.
pub enum Listener {
    /// A kernel TCP listener (must be in nonblocking mode).
    Tcp(TcpListener),
    /// A named host on the in-process fabric.
    Sim(SimListener),
}

impl Listener {
    /// Binds a nonblocking TCP listener at `addr`.
    pub fn bind_tcp(addr: &str) -> io::Result<Listener> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Listener::Tcp(listener))
    }

    /// The local address: the bound socket address for TCP, a synthetic
    /// all-zero address for the fabric (sim hosts are named, not
    /// numbered).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr(),
            Listener::Sim(_) => Ok(SocketAddr::from(([0, 0, 0, 0], 0))),
        }
    }

    /// Accepts one pending connection without blocking; `WouldBlock`
    /// means none is ready on either transport.
    pub fn try_accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(stream, _)| Conn::Tcp(stream)),
            Listener::Sim(l) => l.try_accept().map(Conn::Sim),
        }
    }
}

impl From<TcpListener> for Listener {
    fn from(l: TcpListener) -> Listener {
        Listener::Tcp(l)
    }
}

impl From<SimListener> for Listener {
    fn from(l: SimListener) -> Listener {
        Listener::Sim(l)
    }
}

impl std::fmt::Debug for Listener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Listener::Tcp(l) => write!(f, "Listener::Tcp({:?})", l.local_addr().ok()),
            Listener::Sim(l) => write!(f, "Listener::Sim({})", l.host()),
        }
    }
}

/// One byte-stream connection on either transport. Implements blocking
/// `Read`/`Write`; the read timeout set via [`Conn::set_read_timeout`]
/// surfaces as `WouldBlock`/`TimedOut`, which the engines treat as "idle,
/// rotate" rather than an error.
pub enum Conn {
    /// A kernel TCP stream.
    Tcp(TcpStream),
    /// One end of a fabric connection.
    Sim(SimConn),
}

impl Conn {
    /// Caps how long a blocking read waits for bytes. The TCP side maps
    /// to `TcpStream::set_read_timeout`; the fabric side measures the
    /// timeout on the fabric's own clock, so virtual time drives virtual
    /// waits.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            Conn::Sim(s) => {
                s.set_read_timeout(timeout.map(SimDuration::from_duration));
                Ok(())
            }
        }
    }

    /// Caps how long a blocking write may stall before erroring — the
    /// workers engine's write-stall guard (`SO_SNDTIMEO`). The fabric
    /// side buffers writes without backpressure, so there it is a no-op.
    pub fn set_write_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(timeout),
            Conn::Sim(_) => Ok(()),
        }
    }
}

impl From<TcpStream> for Conn {
    fn from(s: TcpStream) -> Conn {
        Conn::Tcp(s)
    }
}

impl From<SimConn> for Conn {
    fn from(s: SimConn) -> Conn {
        Conn::Sim(s)
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Sim(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Sim(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Sim(s) => s.flush(),
        }
    }
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Conn::Tcp(s) => write!(f, "Conn::Tcp({:?})", s.peer_addr().ok()),
            Conn::Sim(s) => write!(f, "Conn::Sim(#{})", s.id()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcb_sim::World;
    use rcb_util::{Clock, SimTime};

    fn link() -> rcb_sim::LinkModel {
        rcb_sim::LinkModel::from_spec(rcb_sim::LinkSpec::symmetric(
            100_000_000,
            SimDuration::from_millis(1),
        ))
    }

    #[test]
    fn tcp_and_sim_listeners_share_the_accept_contract() {
        // TCP side: nonblocking accept with nothing pending is WouldBlock.
        let tcp = Listener::bind_tcp("127.0.0.1:0").unwrap();
        assert!(tcp.local_addr().unwrap().port() > 0);
        assert_eq!(
            tcp.try_accept().unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        // Sim side: same error before any handshake completes, a `Conn`
        // once one does.
        let world = World::new(11);
        let sim: Listener = world.bind("host").unwrap().into();
        assert_eq!(sim.local_addr().unwrap().port(), 0);
        assert_eq!(
            sim.try_accept().unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        let _client = world.connect("p1", "host", link()).unwrap();
        world.advance_to(SimTime::from_millis(2));
        let conn = sim.try_accept().unwrap();
        assert!(matches!(conn, Conn::Sim(_)));
    }

    #[test]
    fn sim_conn_round_trips_bytes_through_the_seam() {
        let net = rcb_sim::SimNet::new(Clock::wall(), 12);
        let listener = net.bind("host").unwrap();
        let mut client: Conn = net.connect("p1", "host", link()).unwrap().into();
        client.write_all(b"ping").unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        // Wall-clock fabric: the handshake and delivery mature in real
        // milliseconds, so a short spin suffices.
        let mut server: Conn = loop {
            match listener.try_accept() {
                Ok(c) => break c.into(),
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        };
        server
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 8];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");
        server.write_all(b"pong").unwrap();
        let n = client.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"pong");
    }
}
