//! Backend-equivalence suite: the worker-pool, single-loop epoll, and
//! sharded epoll backends must be observationally identical behind the
//! same `Handler`.
//!
//! Every scenario runs the same request corpus against the full backend
//! matrix and asserts **byte-identical** wire output (responses carry no
//! nondeterministic headers, so the full byte stream must match) and
//! identical handler-invocation stats. Scenarios cover the protocol
//! corners where an event-loop rewrite most plausibly diverges:
//! pipelined keep-alive bursts, partial writes forced through tiny socket
//! buffers, malformed requests, `Connection: close`, and mid-request
//! disconnects — plus a sharded-only scenario holding keep-alive
//! connections across every shard and proving responses never interleave
//! across connections.
//!
//! On targets without the epoll shims the suite degrades to exercising
//! the workers backend against itself (the harness still runs; the
//! cross-backend assertions become trivial).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rcb_http::server::{
    handler_fn, Handler, HandlerOutcome, HttpServer, Park, ParkHub, ServerBackend, ServerConfig,
    EPOLL_SUPPORTED,
};
use rcb_http::{Body, Request, Response, Status};

/// Shard count the matrix pins for the sharded leg: explicit (not auto),
/// so coverage is identical on single-core CI machines and laptops.
const MATRIX_SHARDS: usize = 2;

/// The backends under test on this target.
fn backends() -> Vec<ServerBackend> {
    if EPOLL_SUPPORTED {
        vec![
            ServerBackend::Workers,
            ServerBackend::Epoll,
            ServerBackend::EpollSharded(MATRIX_SHARDS),
        ]
    } else {
        vec![ServerBackend::Workers]
    }
}

/// Per-run handler instrumentation: the "stats" half of the equivalence
/// contract.
#[derive(Default)]
struct HandlerStats {
    calls: AtomicU64,
    body_bytes_in: AtomicU64,
}

/// A deterministic handler covering the response shapes the real agent
/// serves: small owned bodies, large `Arc`-shared bodies, prefab wire
/// images, and error statuses.
fn corpus_handler(stats: Arc<HandlerStats>, big: Arc<[u8]>) -> Handler {
    let prefab = Response::xml("<prefab>frozen</prefab>").into_prefab();
    handler_fn(move |req: Request| {
        stats.calls.fetch_add(1, Ordering::Relaxed);
        stats
            .body_bytes_in
            .fetch_add(req.body.len() as u64, Ordering::Relaxed);
        match req.path() {
            "/echo" => Response::with_body(
                Status::OK,
                "text/plain",
                format!("{} {} {}", req.method, req.target, req.body.len()).into_bytes(),
            ),
            "/big" => Response::with_body(
                Status::OK,
                "application/octet-stream",
                Body::Shared(Arc::clone(&big)),
            ),
            "/prefab" => prefab.clone(),
            "/missing" => Response::error(Status::NOT_FOUND, "nope"),
            other => Response::error(Status::BAD_REQUEST, other),
        }
    })
}

struct Run {
    server: HttpServer,
    stats: Arc<HandlerStats>,
}

fn start(backend: ServerBackend, workers: usize, big: &Arc<[u8]>) -> Run {
    let stats = Arc::new(HandlerStats::default());
    let server = HttpServer::bind_with(
        "127.0.0.1:0",
        corpus_handler(Arc::clone(&stats), Arc::clone(big)),
        ServerConfig::builder()
            .backend(backend)
            .workers(workers)
            .build(),
    )
    .unwrap();
    Run { server, stats }
}

/// Runs `scenario` once per backend and asserts the returned wire bytes
/// and handler stats agree across all backends.
fn assert_equivalent(
    workers: usize,
    big_len: usize,
    scenario: impl Fn(&str) -> Vec<u8>,
) -> Vec<u8> {
    let big: Arc<[u8]> = (0..big_len).map(|i| (i % 251) as u8).collect();
    let mut reference: Option<(ServerBackend, Vec<u8>, u64, u64)> = None;
    for backend in backends() {
        let mut run = start(backend, workers, &big);
        let wire = scenario(&run.server.addr().to_string());
        let calls = run.stats.calls.load(Ordering::Relaxed);
        let bytes_in = run.stats.body_bytes_in.load(Ordering::Relaxed);
        run.server.shutdown();
        match &reference {
            None => reference = Some((backend, wire, calls, bytes_in)),
            Some((ref_backend, ref_wire, ref_calls, ref_bytes)) => {
                assert_eq!(
                    &wire, ref_wire,
                    "wire bytes diverge: {backend} vs {ref_backend}"
                );
                assert_eq!(
                    calls, *ref_calls,
                    "handler call count diverges: {backend} vs {ref_backend}"
                );
                assert_eq!(
                    bytes_in, *ref_bytes,
                    "handler body-bytes diverge: {backend} vs {ref_backend}"
                );
            }
        }
    }
    reference.expect("at least one backend").1
}

#[test]
fn pipelined_keepalive_corpus_is_byte_identical() {
    let wire = assert_equivalent(4, 1024, |addr| {
        let corpus = [
            Request::get("/echo?case=1"),
            Request::post("/echo", b"alpha-beta".to_vec()),
            Request::get("/prefab"),
            Request::get("/missing"),
            Request::post("/echo", vec![b'x'; 4096]),
            Request::get("/unknown/path"),
        ];
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // One burst: all six requests hit the socket before the first
        // response is read — the pipelining path must answer in order.
        let mut burst = Vec::new();
        for req in &corpus {
            burst.extend_from_slice(&rcb_http::serialize::serialize_request(req));
        }
        stream.write_all(&burst).unwrap();
        let mut out = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        // Responses are Content-Length framed; collect until the stream
        // goes quiet after the expected response count.
        let mut responses = 0;
        while responses < corpus.len() {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed mid-corpus");
            out.extend_from_slice(&chunk[..n]);
            responses = out.windows(4).filter(|w| *w == b"HTTP".as_slice()).count();
        }
        out
    });
    // Sanity on the shared reference stream: six responses, in order.
    let text = String::from_utf8_lossy(&wire);
    assert_eq!(text.matches("HTTP/1.1").count(), 6);
    assert!(text.contains("GET /echo?case=1 0"));
    assert!(text.contains("POST /echo 10"));
    assert!(text.contains("<prefab>frozen</prefab>"));
    assert!(text.contains("404 Not Found"));
    assert!(text.contains("POST /echo 4096"));
}

#[test]
fn partial_writes_through_tiny_buffers_are_byte_identical() {
    // A 4 MB shared body with the client's receive window shrunk far
    // below it: the server's nonblocking write hits `EWOULDBLOCK`
    // mid-body and must resume from the exact byte (the workers backend
    // blocks in the kernel instead — same bytes either way). The
    // tiny-buffer knob goes through the libc-free `setsockopt` shim.
    // (64 KB, not the 4 KB floor: windows below the delayed-ACK
    // threshold turn loopback into a 40 ms-per-segment crawl without
    // making the partial writes any more partial.)
    const BIG: usize = 4 << 20;
    let wire = assert_equivalent(2, BIG, |addr| {
        let stream = TcpStream::connect(addr).unwrap();
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            use std::os::fd::AsRawFd;
            rcb_util::sys::set_recv_buffer(stream.as_raw_fd(), 64 * 1024).unwrap();
        }
        let mut stream = stream;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        stream
            .write_all(&rcb_http::serialize::serialize_request(&Request::get(
                "/big",
            )))
            .unwrap();
        // Drain slowly in small chunks so the socket stays clogged and
        // the server keeps resuming the same response.
        let mut out = Vec::new();
        let mut chunk = [0u8; 8 * 1024];
        loop {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed mid-body at {} bytes", out.len());
            out.extend_from_slice(&chunk[..n]);
            if out.len() >= BIG {
                // Head parsed below; body length known.
                let head_end = out
                    .windows(4)
                    .position(|w| w == b"\r\n\r\n")
                    .expect("head complete")
                    + 4;
                if out.len() >= head_end + BIG {
                    break;
                }
            }
        }
        out
    });
    // The body survived the partial-write gauntlet intact.
    let head_end = wire.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
    let body = &wire[head_end..];
    assert_eq!(body.len(), BIG);
    assert!(body.iter().enumerate().all(|(i, b)| *b == (i % 251) as u8));
}

#[test]
fn malformed_requests_get_identical_400_and_close() {
    for garbage in [
        &b"NONSENSE\r\n\r\n"[..],
        &b"GET / HTTP/2\r\n\r\n"[..],
        &b"GET x HTTP/1.1\r\n\r\n"[..],
        &b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n"[..],
    ] {
        let wire = assert_equivalent(2, 16, |addr| {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            stream.write_all(garbage).unwrap();
            let mut out = Vec::new();
            stream.read_to_end(&mut out).unwrap(); // server closes after 400
            out
        });
        let text = String::from_utf8_lossy(&wire);
        assert!(
            text.starts_with("HTTP/1.1 400"),
            "expected 400 for {garbage:?}, got {text:?}"
        );
    }
}

#[test]
fn good_then_malformed_pipelined_serves_good_first() {
    // A valid request followed by garbage on the same connection: the
    // valid one is answered, then the 400, then close — in that order on
    // both backends.
    let wire = assert_equivalent(2, 16, |addr| {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut burst = rcb_http::serialize::serialize_request(&Request::get("/echo"));
        burst.extend_from_slice(b"GARBAGE\r\n\r\n");
        stream.write_all(&burst).unwrap();
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap();
        out
    });
    let text = String::from_utf8_lossy(&wire);
    let ok_at = text.find("HTTP/1.1 200").expect("200 first");
    let bad_at = text.find("HTTP/1.1 400").expect("400 second");
    assert!(ok_at < bad_at);
}

#[test]
fn connection_close_is_honored_identically() {
    let wire = assert_equivalent(2, 16, |addr| {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let req = Request::get("/echo").with_header("Connection", "close");
        stream
            .write_all(&rcb_http::serialize::serialize_request(&req))
            .unwrap();
        let mut out = Vec::new();
        stream.read_to_end(&mut out).unwrap(); // EOF proves the close
        out
    });
    assert!(String::from_utf8_lossy(&wire).starts_with("HTTP/1.1 200"));
}

#[test]
fn mid_request_disconnect_leaves_identical_stats() {
    // A client abandons a request halfway (head promised 100 body bytes,
    // sent 7); the handler must never see it, and the server keeps
    // serving. The follow-up request proves liveness and contributes the
    // only handler call.
    let wire = assert_equivalent(2, 16, |addr| {
        {
            let mut dying = TcpStream::connect(addr).unwrap();
            dying
                .write_all(b"POST /echo HTTP/1.1\r\nContent-Length: 100\r\n\r\npartial")
                .unwrap();
        } // dropped mid-request
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(&rcb_http::serialize::serialize_request(&Request::get(
                "/echo?after=disconnect",
            )))
            .unwrap();
        let resp = rcb_http::client::read_response(&mut stream).unwrap();
        rcb_http::serialize::serialize_response(&resp)
    });
    assert!(String::from_utf8_lossy(&wire).contains("GET /echo?after=disconnect"));
}

#[test]
fn keepalive_interleaved_across_many_connections() {
    // 24 persistent connections, 3 requests each, interleaved round-robin
    // on a 2-thread pool: ordering within a connection must hold on both
    // backends, and every byte stream must agree.
    let wire = assert_equivalent(2, 16, |addr| {
        let mut conns: Vec<TcpStream> = (0..24)
            .map(|_| {
                let s = TcpStream::connect(addr).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                s
            })
            .collect();
        let mut out = Vec::new();
        for round in 0..3 {
            for (i, conn) in conns.iter_mut().enumerate() {
                let req = Request::get(format!("/echo?c={i}&r={round}"));
                conn.write_all(&rcb_http::serialize::serialize_request(&req))
                    .unwrap();
                let resp = rcb_http::client::read_response(conn).unwrap();
                out.extend_from_slice(&rcb_http::serialize::serialize_response(&resp));
            }
        }
        out
    });
    assert_eq!(
        String::from_utf8_lossy(&wire)
            .matches("HTTP/1.1 200")
            .count(),
        72
    );
}

#[test]
fn big_responses_across_kept_alive_connection() {
    // Large shared-body responses back to back on one connection: the
    // write cursor must reset cleanly between responses.
    const BIG: usize = 256 << 10;
    let wire = assert_equivalent(2, BIG, |addr| {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut out = Vec::new();
        for _ in 0..3 {
            stream
                .write_all(&rcb_http::serialize::serialize_request(&Request::get(
                    "/big",
                )))
                .unwrap();
            let resp = rcb_http::client::read_response(&mut stream).unwrap();
            assert_eq!(resp.body.len(), BIG);
            out.extend_from_slice(&rcb_http::serialize::serialize_response(&resp));
        }
        out
    });
    assert_eq!(wire.len() % 3, 0);
}

#[test]
fn epoll_holds_hundreds_of_connections_on_tiny_pool() {
    // The capability the workers backend cannot offer: 300 simultaneous
    // keep-alive connections on a 2-thread dispatch pool. Epoll-only (on
    // the workers backend 300 idle connections each cost a 2 ms rotation
    // pass, which is the motivation for the event loop, not a bug). Both
    // epoll variants must offer it — sharding may not shrink the ceiling.
    if !EPOLL_SUPPORTED {
        return;
    }
    for backend in [
        ServerBackend::Epoll,
        ServerBackend::EpollSharded(MATRIX_SHARDS),
    ] {
        let big: Arc<[u8]> = Arc::from(&b"tiny"[..]);
        let mut run = start(backend, 2, &big);
        let addr = run.server.addr().to_string();
        let mut conns: Vec<TcpStream> = (0..300)
            .map(|_| {
                let s = TcpStream::connect(&addr).unwrap();
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                s
            })
            .collect();
        for round in 0..2 {
            for (i, conn) in conns.iter_mut().enumerate() {
                let req = Request::get(format!("/echo?conn={i}&round={round}"));
                conn.write_all(&rcb_http::serialize::serialize_request(&req))
                    .unwrap();
                let resp = rcb_http::client::read_response(conn).unwrap();
                assert_eq!(
                    resp.body_str(),
                    format!("GET /echo?conn={i}&round={round} 0"),
                    "{backend}"
                );
            }
        }
        assert_eq!(run.stats.calls.load(Ordering::Relaxed), 600, "{backend}");
        run.server.shutdown();
    }
}

#[test]
fn sharded_responses_never_interleave_across_connections() {
    // The cross-shard ordering contract: with connections spread over
    // every shard and requests pipelined on all of them at once, each
    // connection's byte stream must contain exactly its own responses, in
    // its own request order — nothing from a sibling connection on the
    // same shard, nothing from another shard.
    if !EPOLL_SUPPORTED {
        return;
    }
    const SHARDS: usize = 3;
    const CONNS: usize = 6 * SHARDS; // ≥ 4×shards, two per shard per round
    const ROUNDS: usize = 3;
    let big: Arc<[u8]> = (0..512usize).map(|i| (i % 251) as u8).collect();
    let mut run = start(ServerBackend::EpollSharded(SHARDS), 2, &big);
    let addr = run.server.addr().to_string();

    let mut conns: Vec<TcpStream> = (0..CONNS)
        .map(|_| {
            let s = TcpStream::connect(&addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();

    // Reads exactly `n` Content-Length-framed responses off one stream,
    // frame-accurate (a pipelined peer may deliver several responses in
    // one read; `client::read_response` would discard the surplus).
    fn read_frames(stream: &mut TcpStream, n: usize) -> Vec<Vec<u8>> {
        let mut buf: Vec<u8> = Vec::new();
        let mut frames = Vec::new();
        let mut chunk = [0u8; 16 * 1024];
        while frames.len() < n {
            while let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
                let declared = head
                    .lines()
                    .find_map(|l| {
                        let (name, value) = l.split_once(':')?;
                        name.eq_ignore_ascii_case("content-length")
                            .then(|| value.trim().parse::<usize>().ok())?
                    })
                    .unwrap_or(0);
                let total = head_end + 4 + declared;
                if buf.len() < total {
                    break;
                }
                frames.push(buf.drain(..total).collect());
                if frames.len() == n {
                    return frames;
                }
            }
            let got = stream.read(&mut chunk).unwrap();
            assert!(got > 0, "server closed mid-stream");
            buf.extend_from_slice(&chunk[..got]);
        }
        frames
    }

    // Per round: pipeline two tagged requests on *every* connection
    // before reading a single response, so all shards hold in-flight
    // pipelines simultaneously; then drain each connection and check its
    // stream carries exactly its own tags, in order.
    for round in 0..ROUNDS {
        for (i, conn) in conns.iter_mut().enumerate() {
            let mut burst = Vec::new();
            for k in 0..2 {
                let req = Request::get(format!("/echo?c={i}&r={round}&k={k}"));
                burst.extend_from_slice(&rcb_http::serialize::serialize_request(&req));
            }
            conn.write_all(&burst).unwrap();
        }
        for (i, conn) in conns.iter_mut().enumerate() {
            for (k, frame) in read_frames(conn, 2).into_iter().enumerate() {
                let resp = rcb_http::parse_response(&frame).unwrap();
                assert_eq!(
                    resp.body_str(),
                    format!("GET /echo?c={i}&r={round}&k={k} 0"),
                    "connection {i} received a response that is not its own"
                );
            }
        }
    }

    // Round-robin distribution is deterministic: every shard carries an
    // equal slice of the connections, so the pipelines above really ran
    // on all three loops.
    let stats = run.server.stats();
    assert_eq!(stats.shards, SHARDS);
    assert_eq!(stats.connections_accepted, CONNS as u64);
    assert_eq!(
        stats.connections_per_shard,
        vec![(CONNS / SHARDS) as u64; SHARDS]
    );
    assert_eq!(
        run.stats.calls.load(Ordering::Relaxed),
        (CONNS * ROUNDS * 2) as u64
    );
    run.server.shutdown();
}

/// A handler for the park scenarios: `/wait` parks on key 0 until the
/// run's hub publishes (waking to a prefab update) or `max_wait` elapses
/// (falling back to a prefab empty reply, byte-identical to `/empty`);
/// everything else echoes.
fn park_handler(max_wait: Duration) -> Handler {
    let update = Response::xml("<update>fresh</update>").into_prefab();
    let empty = Response::xml("").into_prefab();
    Arc::new(move |req: Request| {
        if req.path() == "/wait" {
            let update = update.clone();
            let empty = empty.clone();
            return HandlerOutcome::Park(Park {
                channel: 0,
                wait_key: 0,
                max_wait,
                on_wake: Box::new(move || update),
                on_timeout: Box::new(move || empty),
            });
        }
        if req.path() == "/empty" {
            return empty.clone().into();
        }
        Response::with_body(Status::OK, "text/plain", req.target.into_bytes()).into()
    })
}

/// Reads exactly `n` Content-Length-framed responses off one stream.
fn read_n_frames(stream: &mut TcpStream, n: usize) -> Vec<u8> {
    let mut buf: Vec<u8> = Vec::new();
    let mut frames = 0;
    let mut consumed = 0;
    let mut chunk = [0u8; 16 * 1024];
    while frames < n {
        while let Some(head_end) = buf[consumed..].windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[consumed..consumed + head_end]).to_string();
            let declared = head
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    name.eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse::<usize>().ok())?
                })
                .unwrap_or(0);
            let total = consumed + head_end + 4 + declared;
            if buf.len() < total {
                break;
            }
            consumed = total;
            frames += 1;
            if frames == n {
                buf.truncate(consumed);
                return buf;
            }
        }
        let got = stream.read(&mut chunk).unwrap();
        assert!(got > 0, "server closed mid-stream");
        buf.extend_from_slice(&chunk[..got]);
    }
    buf
}

#[test]
fn parked_poll_wake_is_byte_identical_across_backends() {
    // The parked long-poll contract: `/wait` is held open with no
    // dispatch slot consumed; a publish on the run's hub completes it
    // from the fresh prefab. A second request pipelined *behind* the
    // parked one must still be answered after it (order preserved), and
    // the full two-response byte stream must agree across all backends.
    let mut reference: Option<(ServerBackend, Vec<u8>)> = None;
    for backend in backends() {
        let hub = Arc::new(ParkHub::default());
        let mut server = HttpServer::bind_with(
            "127.0.0.1:0",
            park_handler(Duration::from_secs(5)),
            ServerConfig::builder()
                .backend(backend)
                .workers(2)
                .park_hub(Arc::clone(&hub))
                .build(),
        )
        .unwrap();
        let addr = server.addr().to_string();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(&addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let mut burst = rcb_http::serialize::serialize_request(&Request::get("/wait"));
            burst.extend_from_slice(&rcb_http::serialize::serialize_request(&Request::get(
                "/echo",
            )));
            stream.write_all(&burst).unwrap();
            read_n_frames(&mut stream, 2)
        });
        std::thread::sleep(Duration::from_millis(120));
        hub.publish(1);
        let wire = client.join().unwrap();
        server.shutdown();
        let text = String::from_utf8_lossy(&wire);
        let wake_at = text.find("<update>fresh</update>").expect("woken reply");
        let echo_at = text.find("\r\n\r\n/echo").expect("pipelined reply");
        assert!(
            wake_at < echo_at,
            "{backend}: pipelined response overtook the parked one"
        );
        match &reference {
            None => reference = Some((backend, wire)),
            Some((ref_backend, ref_wire)) => assert_eq!(
                &wire, ref_wire,
                "woken wire bytes diverge: {backend} vs {ref_backend}"
            ),
        }
    }
}

#[test]
fn woken_delta_and_fallback_replies_are_byte_identical_across_backends() {
    use rcb_http::{parse_batch_parts, BATCH_CONTENT_TYPE, BATCH_MEDIA_TYPE};
    use std::io::Write as _;

    // The delta wake path exactly as the agent drives it at this seam:
    // the on_wake closure picks between a prefab multipart batch (delta
    // + inlined object) and the prefab full XML (ring-miss fallback).
    // Both picks must produce identical bytes on every backend, and the
    // fallback must equal the immediate full reply bit for bit.
    let delta_xml = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n\
        <deltaContent>\n<docTime>2</docTime>\n<fromDocTime>1</fromDocTime>\n\
        <docContent>\n</docContent>\n<userActions></userActions>\n</deltaContent>\n";
    // Binary part data containing \r\n and boundary-resembling bytes:
    // the framing is Content-Length driven, not sentinel-scanning.
    let obj: &[u8] = b"\x89PNG\r\n--rcb-batch\r\nnot-a-boundary\x00\xff";
    let mut batch = Vec::new();
    write!(
        batch,
        "--rcb-batch\r\nContent-Type: text/xml; charset=utf-8\r\nContent-Length: {}\r\n\r\n",
        delta_xml.len()
    )
    .unwrap();
    batch.extend_from_slice(delta_xml.as_bytes());
    batch.extend_from_slice(b"\r\n");
    write!(
        batch,
        "--rcb-batch\r\nContent-Type: image/png\r\nX-RCB-Url: /cache/7?k=00aabb\r\nContent-Length: {}\r\n\r\n",
        obj.len()
    )
    .unwrap();
    batch.extend_from_slice(obj);
    batch.extend_from_slice(b"\r\n--rcb-batch--\r\n");

    let delta = Response::with_body(Status::OK, BATCH_CONTENT_TYPE, batch).into_prefab();
    let full = Response::xml("<newContent>full</newContent>").into_prefab();

    let make_handler = {
        let delta = delta.clone();
        let full = full.clone();
        move || -> Handler {
            let delta = delta.clone();
            let full = full.clone();
            Arc::new(move |req: Request| {
                if req.path() == "/wake" {
                    let reply = if req.query_param("d").as_deref() == Some("1") {
                        delta.clone()
                    } else {
                        full.clone()
                    };
                    return HandlerOutcome::Park(Park {
                        channel: 0,
                        wait_key: 0,
                        max_wait: Duration::from_secs(5),
                        on_wake: Box::new(move || reply),
                        on_timeout: Box::new(|| Response::xml("")),
                    });
                }
                full.clone().into()
            })
        }
    };

    let mut reference: Option<(ServerBackend, Vec<u8>, Vec<u8>)> = None;
    for backend in backends() {
        let hub = Arc::new(ParkHub::default());
        let mut server = HttpServer::bind_with(
            "127.0.0.1:0",
            make_handler(),
            ServerConfig::builder()
                .backend(backend)
                .workers(2)
                .park_hub(Arc::clone(&hub))
                .build(),
        )
        .unwrap();
        let addr = server.addr().to_string();
        let connect = || {
            let s = TcpStream::connect(&addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        };
        let mut delta_conn = connect();
        let mut fallback_conn = connect();
        delta_conn
            .write_all(&rcb_http::serialize::serialize_request(&Request::get(
                "/wake?d=1",
            )))
            .unwrap();
        fallback_conn
            .write_all(&rcb_http::serialize::serialize_request(&Request::get(
                "/wake",
            )))
            .unwrap();
        std::thread::sleep(Duration::from_millis(120));
        hub.publish(1);
        let delta_wire = read_n_frames(&mut delta_conn, 1);
        let fallback_wire = read_n_frames(&mut fallback_conn, 1);
        // The fallback is the full reply's exact bytes, not a near-copy.
        fallback_conn
            .write_all(&rcb_http::serialize::serialize_request(&Request::get(
                "/full",
            )))
            .unwrap();
        let immediate_full = read_n_frames(&mut fallback_conn, 1);
        server.shutdown();
        assert_eq!(
            fallback_wire, immediate_full,
            "{backend}: fallback bytes differ from the full reply"
        );
        // The woken delta parses back: multipart content type, both
        // parts intact (binary data with embedded CRLF/boundary bytes
        // survives), minted URL preserved on the object part.
        let resp = rcb_http::parse_response(&delta_wire).unwrap();
        assert_eq!(
            resp.content_type().as_deref(),
            Some(BATCH_MEDIA_TYPE),
            "{backend}"
        );
        let parts = parse_batch_parts(resp.body.as_slice()).unwrap();
        assert_eq!(parts.len(), 2, "{backend}");
        assert_eq!(parts[0].data, delta_xml.as_bytes(), "{backend}");
        assert_eq!(parts[1].data, obj, "{backend}");
        assert_eq!(
            parts[1].url.as_deref(),
            Some("/cache/7?k=00aabb"),
            "{backend}"
        );
        match &reference {
            None => reference = Some((backend, delta_wire, fallback_wire)),
            Some((ref_backend, ref_delta, ref_fallback)) => {
                assert_eq!(
                    &delta_wire, ref_delta,
                    "delta wire bytes diverge: {backend} vs {ref_backend}"
                );
                assert_eq!(
                    &fallback_wire, ref_fallback,
                    "fallback wire bytes diverge: {backend} vs {ref_backend}"
                );
            }
        }
    }
}

#[test]
fn parked_poll_timeout_equals_the_empty_reply_on_every_backend() {
    // An unpublished park runs out its window and must produce the exact
    // bytes of the immediate empty reply — the fallback is the same
    // prefab, not a near-copy.
    let mut reference: Option<(ServerBackend, Vec<u8>)> = None;
    for backend in backends() {
        let mut server = HttpServer::bind_with(
            "127.0.0.1:0",
            park_handler(Duration::from_millis(150)),
            ServerConfig::builder().backend(backend).workers(2).build(),
        )
        .unwrap();
        let addr = server.addr().to_string();
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(&rcb_http::serialize::serialize_request(&Request::get(
                "/wait",
            )))
            .unwrap();
        let started = std::time::Instant::now();
        let timed_out = read_n_frames(&mut stream, 1);
        let waited = started.elapsed();
        assert!(
            waited >= Duration::from_millis(100),
            "{backend}: park returned after only {waited:?}"
        );
        stream
            .write_all(&rcb_http::serialize::serialize_request(&Request::get(
                "/empty",
            )))
            .unwrap();
        let immediate = read_n_frames(&mut stream, 1);
        server.shutdown();
        assert_eq!(
            timed_out, immediate,
            "{backend}: timeout fallback bytes differ from the empty reply"
        );
        match &reference {
            None => reference = Some((backend, timed_out)),
            Some((ref_backend, ref_wire)) => assert_eq!(
                &timed_out, ref_wire,
                "timeout wire bytes diverge: {backend} vs {ref_backend}"
            ),
        }
    }
}

/// `start` with explicit overload limits — the tight-limit scenarios
/// (oversize rejection, admission shed, park cap) run through here.
fn start_with_overload(
    backend: ServerBackend,
    workers: usize,
    big: &Arc<[u8]>,
    overload: rcb_http::server::OverloadConfig,
) -> Run {
    let stats = Arc::new(HandlerStats::default());
    let server = HttpServer::bind_with(
        "127.0.0.1:0",
        corpus_handler(Arc::clone(&stats), Arc::clone(big)),
        ServerConfig::builder()
            .backend(backend)
            .workers(workers)
            .overload(overload)
            .build(),
    )
    .unwrap();
    Run { server, stats }
}

#[test]
fn oversize_rejections_are_byte_identical_across_backends() {
    use rcb_http::server::OverloadConfig;
    // A request head over the limit gets the prefab 431; a declared body
    // over the limit gets the prefab 413. Both close the connection, and
    // the handler never runs. The bytes must agree on every backend.
    let mut reference: Option<(ServerBackend, Vec<u8>, Vec<u8>)> = None;
    for backend in backends() {
        let big: Arc<[u8]> = Arc::from(&b"tiny"[..]);
        let overload = OverloadConfig {
            max_header_bytes: 256,
            max_body_bytes: 256,
            ..OverloadConfig::default()
        };
        let mut run = start_with_overload(backend, 2, &big, overload);
        let addr = run.server.addr().to_string();
        let big_head = {
            let mut stream = TcpStream::connect(&addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let head = format!(
                "GET / HTTP/1.1\r\nHost: demo\r\nX-Pad: {}\r\n\r\n",
                "a".repeat(512)
            );
            stream.write_all(head.as_bytes()).unwrap();
            let mut out = Vec::new();
            stream.read_to_end(&mut out).unwrap(); // server closes after 431
            out
        };
        let big_body = {
            let mut stream = TcpStream::connect(&addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            stream
                .write_all(b"POST /echo HTTP/1.1\r\nHost: demo\r\nContent-Length: 100000\r\n\r\n")
                .unwrap();
            let mut out = Vec::new();
            stream.read_to_end(&mut out).unwrap(); // server closes after 413
            out
        };
        assert!(
            String::from_utf8_lossy(&big_head).starts_with("HTTP/1.1 431"),
            "{backend}: {:?}",
            String::from_utf8_lossy(&big_head)
        );
        assert!(
            String::from_utf8_lossy(&big_body).starts_with("HTTP/1.1 413"),
            "{backend}: {:?}",
            String::from_utf8_lossy(&big_body)
        );
        assert_eq!(run.stats.calls.load(Ordering::Relaxed), 0, "{backend}");
        let stats = run.server.stats();
        assert_eq!(stats.oversize_head, 1, "{backend}");
        assert_eq!(stats.oversize_body, 1, "{backend}");
        run.server.shutdown();
        match &reference {
            None => reference = Some((backend, big_head, big_body)),
            Some((ref_backend, ref_head, ref_body)) => {
                assert_eq!(
                    &big_head, ref_head,
                    "431 bytes diverge: {backend} vs {ref_backend}"
                );
                assert_eq!(
                    &big_body, ref_body,
                    "413 bytes diverge: {backend} vs {ref_backend}"
                );
            }
        }
    }
}

#[test]
fn shed_503_with_retry_after_is_byte_identical_across_backends() {
    use rcb_http::server::OverloadConfig;
    // `queue_high_water: 0` sheds every request: the prefab 503 carries a
    // Retry-After drawn from the seeded pool, so with the same seed the
    // first shed's bytes are identical on every backend — and the handler
    // is never invoked (that's what "no dispatch slot consumed" means).
    let mut reference: Option<(ServerBackend, Vec<u8>)> = None;
    for backend in backends() {
        let big: Arc<[u8]> = Arc::from(&b"tiny"[..]);
        let overload = OverloadConfig {
            queue_high_water: 0,
            ..OverloadConfig::default()
        };
        let mut run = start_with_overload(backend, 2, &big, overload);
        let addr = run.server.addr().to_string();
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        stream
            .write_all(&rcb_http::serialize::serialize_request(&Request::get(
                "/echo",
            )))
            .unwrap();
        let wire = read_n_frames(&mut stream, 1);
        let text = String::from_utf8_lossy(&wire);
        assert!(text.starts_with("HTTP/1.1 503"), "{backend}: {text:?}");
        assert!(text.contains("Retry-After:"), "{backend}: {text:?}");
        assert_eq!(run.stats.calls.load(Ordering::Relaxed), 0, "{backend}");
        assert_eq!(run.server.stats().requests_shed, 1, "{backend}");
        run.server.shutdown();
        match &reference {
            None => reference = Some((backend, wire)),
            Some((ref_backend, ref_wire)) => assert_eq!(
                &wire, ref_wire,
                "503 bytes diverge: {backend} vs {ref_backend}"
            ),
        }
    }
}

#[test]
fn park_cap_degradation_equals_the_empty_poll_prefab() {
    use rcb_http::server::OverloadConfig;
    // `max_parked: 0` declines every park: `/wait` must answer
    // *immediately* with the exact bytes of the `/empty` prefab on every
    // backend — degradation is the timeout path run early, not a new
    // response shape.
    let mut reference: Option<(ServerBackend, Vec<u8>)> = None;
    for backend in backends() {
        let mut server = HttpServer::bind_with(
            "127.0.0.1:0",
            park_handler(Duration::from_secs(5)),
            ServerConfig::builder()
                .backend(backend)
                .workers(2)
                .overload(OverloadConfig {
                    max_parked: 0,
                    ..OverloadConfig::default()
                })
                .build(),
        )
        .unwrap();
        let addr = server.addr().to_string();
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let started = std::time::Instant::now();
        stream
            .write_all(&rcb_http::serialize::serialize_request(&Request::get(
                "/wait",
            )))
            .unwrap();
        let degraded = read_n_frames(&mut stream, 1);
        let waited = started.elapsed();
        assert!(
            waited < Duration::from_secs(2),
            "{backend}: degraded park still waited {waited:?}"
        );
        stream
            .write_all(&rcb_http::serialize::serialize_request(&Request::get(
                "/empty",
            )))
            .unwrap();
        let immediate = read_n_frames(&mut stream, 1);
        assert_eq!(
            degraded, immediate,
            "{backend}: degraded park bytes differ from the empty reply"
        );
        assert_eq!(server.stats().parks_shed, 1, "{backend}");
        server.shutdown();
        match &reference {
            None => reference = Some((backend, degraded)),
            Some((ref_backend, ref_wire)) => assert_eq!(
                &degraded, ref_wire,
                "degraded park bytes diverge: {backend} vs {ref_backend}"
            ),
        }
    }
}

#[test]
fn responses_parse_back_to_handler_output() {
    // Round-trip sanity shared by both backends: what the client parses
    // equals what the handler produced (catches framing bugs that
    // byte-diffing two broken backends against each other would miss).
    for backend in backends() {
        let big: Arc<[u8]> = (0..512usize).map(|i| (i % 251) as u8).collect();
        let mut run = start(backend, 2, &big);
        let addr = run.server.addr().to_string();
        let resp = rcb_http::client::send_request(&addr, &Request::post("/echo", b"abc".to_vec()))
            .unwrap();
        assert_eq!(resp.status, Status::OK, "{backend}");
        assert_eq!(resp.body_str(), "POST /echo 3", "{backend}");
        let resp = rcb_http::client::send_request(&addr, &Request::get("/big")).unwrap();
        assert_eq!(resp.body.as_slice(), big.as_ref(), "{backend}");
        run.server.shutdown();
    }
}
