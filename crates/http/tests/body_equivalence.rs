//! Body-representation equivalence: `Body::Owned`, `Body::Shared`, and
//! prefab wire images must be indistinguishable on the wire.
//!
//! The zero-copy read path swaps owned bodies for shared (and frozen)
//! ones; these tests pin the contract that makes the swap safe — every
//! representation of the same bytes serializes identically, survives
//! partial writes, and interleaves freely on one keep-alive connection.

use std::sync::Arc;

use proptest::prelude::*;

use rcb_http::client::HttpConnection;
use rcb_http::message::{Body, Request, Response, Status};
use rcb_http::parse_response;
use rcb_http::serialize::{serialize_response, write_response_to};
use rcb_http::server::{handler_fn, Handler, HttpServer, ServerConfig};

proptest! {
    #[test]
    fn owned_shared_and_prefab_serialize_to_identical_wire_bytes(
        body in proptest::collection::vec(any::<u8>(), 0..2048),
        status_choice in 0usize..4,
        content_type in "[a-z]{1,8}/[a-z]{1,8}"
    ) {
        let status = [Status::OK, Status::FOUND, Status::NOT_FOUND, Status::INTERNAL]
            [status_choice];
        let owned = Response::with_body(status, &content_type, body.clone());
        let shared = Response::with_body(
            status,
            &content_type,
            Body::Shared(Arc::from(body.as_slice())),
        );
        let prefab = shared.clone().into_prefab();

        let wire = serialize_response(&owned);
        prop_assert_eq!(&serialize_response(&shared), &wire);
        prop_assert_eq!(&serialize_response(&prefab), &wire);

        // The streaming writer produces the same bytes for all three.
        for resp in [&owned, &shared, &prefab] {
            let mut sink = Vec::new();
            write_response_to(&mut sink, resp).unwrap();
            prop_assert_eq!(&sink, &wire);
        }

        // And the wire form parses back to an equal response (equality
        // ignores representation, as it must).
        let parsed = parse_response(&wire).unwrap();
        prop_assert_eq!(&parsed, &owned);
        prop_assert_eq!(&parsed, &shared);
        prop_assert_eq!(&parsed, &prefab);
    }

    #[test]
    fn shared_body_clones_copy_no_bytes(
        body in proptest::collection::vec(any::<u8>(), 1..512)
    ) {
        let shared = Body::Shared(Arc::from(body.as_slice()));
        prop_assert_eq!(shared.copied_len(), 0);
        prop_assert_eq!(Body::Owned(body.clone()).copied_len(), body.len());
        // Cloning a shared body yields the same allocation.
        let Body::Shared(a) = &shared else { unreachable!() };
        let Body::Shared(b) = &shared.clone() else { panic!("clone changed repr") };
        prop_assert!(Arc::ptr_eq(a, b));
    }
}

/// One keep-alive connection, pipelining responses that alternate between
/// owned, shared, and prefab bodies (including an empty one and a large
/// one spanning several socket writes): every reply must arrive intact,
/// framed correctly, and in order.
#[test]
fn keepalive_pipelining_of_mixed_body_representations() {
    let big: Arc<[u8]> = (0..=255u8)
        .cycle()
        .take(192 * 1024)
        .collect::<Vec<u8>>()
        .into();
    let shared: Arc<[u8]> = Arc::from(b"shared-payload".as_slice());
    let prefab_big = Response::with_body(
        Status::OK,
        "application/octet-stream",
        Body::Shared(Arc::clone(&big)),
    )
    .into_prefab();
    let handler: Handler = {
        let shared = Arc::clone(&shared);
        let big = Arc::clone(&big);
        handler_fn(move |req: Request| match req.path() {
            "/owned" => Response::with_body(Status::OK, "text/plain", b"owned-payload".to_vec()),
            "/shared" => {
                Response::with_body(Status::OK, "text/plain", Body::Shared(Arc::clone(&shared)))
            }
            "/big-shared" => Response::with_body(
                Status::OK,
                "application/octet-stream",
                Body::Shared(Arc::clone(&big)),
            ),
            "/big-prefab" => prefab_big.clone(),
            "/empty" => Response::empty_ok(),
            _ => Response::error(Status::NOT_FOUND, "nope"),
        })
    };
    let mut server = HttpServer::bind_with(
        "127.0.0.1:0",
        handler,
        ServerConfig::builder().workers(2).build(),
    )
    .unwrap();
    let mut conn = HttpConnection::connect(&server.addr().to_string()).unwrap();

    let sequence: &[(&str, &[u8])] = &[
        ("/owned", b"owned-payload"),
        ("/shared", b"shared-payload"),
        ("/big-shared", &big),
        ("/empty", b""),
        ("/big-prefab", &big),
        ("/shared", b"shared-payload"),
        ("/owned", b"owned-payload"),
        ("/big-prefab", &big),
        ("/empty", b""),
    ];
    for _round in 0..3 {
        for (path, expected) in sequence {
            let resp = conn.round_trip(&Request::get(*path)).unwrap();
            assert_eq!(resp.status, Status::OK, "path {path}");
            assert_eq!(resp.body.as_slice(), *expected, "path {path}");
            assert_eq!(
                resp.headers.content_length().unwrap(),
                Some(expected.len()),
                "path {path}"
            );
        }
    }
    server.shutdown();
}
