//! Fault-injection regression suite for the server backends.
//!
//! The resilience paths — listener mute-with-backoff after a transient
//! `accept(2)` error, surviving an `EMFILE` storm, resuming a response
//! after `EWOULDBLOCK` mid-write, dropping a connection cleanly when
//! `epoll_ctl(2)` refuses the registration — cannot be provoked reliably
//! from a real socket. The `rcb_util::fault` lever (armed through this
//! crate's `fault-injection` dev-feature) injects the errnos at the
//! hooked call sites instead, so each path gets a deterministic
//! regression test on every epoll variant (and, for accept, the workers
//! backend too).
//!
//! Fault state is process-global, so every test holds [`FAULT_LOCK`] and
//! disarms through a drop guard — a failing assertion cannot leak armed
//! faults into a sibling test.

#![cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use rcb_http::server::{handler_fn, Handler, HttpServer, ServerBackend, ServerConfig};
use rcb_http::{Body, Request, Response, Status};
use rcb_util::fault;

/// Serializes the tests in this file (fault state is process-global).
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Holds the lock for one test and guarantees a disarm on every exit.
struct FaultScope(#[allow(dead_code)] MutexGuard<'static, ()>);

impl FaultScope {
    fn enter() -> FaultScope {
        let guard = FAULT_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        fault::clear();
        FaultScope(guard)
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        fault::clear();
    }
}

/// The epoll variants under test (explicit shard count: deterministic on
/// any core count).
fn epoll_backends() -> [ServerBackend; 2] {
    [ServerBackend::Epoll, ServerBackend::EpollSharded(2)]
}

fn echo_handler() -> Handler {
    handler_fn(|req: Request| {
        Response::with_body(Status::OK, "text/plain", req.target.into_bytes())
    })
}

fn bind(backend: ServerBackend, workers: usize, handler: Handler) -> HttpServer {
    HttpServer::bind_with(
        "127.0.0.1:0",
        handler,
        ServerConfig::builder()
            .backend(backend)
            .workers(workers)
            .build(),
    )
    .unwrap()
}

fn get(addr: &str, path: &str) -> Response {
    rcb_http::client::send_request(addr, &Request::get(path)).unwrap()
}

#[test]
fn listener_mutes_with_backoff_and_recovers_on_epoll_variants() {
    // K transient accept errors in a row: the loop must mute the
    // listener, back off (1 ms → 2 ms → 4 ms), retry, and then accept the
    // waiting connection — counting exactly K survived errors and serving
    // normally afterwards.
    let _scope = FaultScope::enter();
    for backend in epoll_backends() {
        let server = bind(backend, 2, echo_handler());
        let addr = server.addr().to_string();
        fault::fail_next(fault::Op::Accept, 3, fault::ECONNABORTED);
        let t0 = Instant::now();
        let resp = get(&addr, "/after-mute");
        assert_eq!(resp.status, Status::OK, "{backend}");
        assert_eq!(resp.body_str(), "/after-mute", "{backend}");
        assert_eq!(
            fault::pending(fault::Op::Accept),
            0,
            "{backend}: all injected accept errors consumed"
        );
        assert_eq!(server.stats().accept_errors, 3, "{backend}");
        // Three mute windows (1+2+4 ms) plus loop ticks — well under the
        // client's 10 s read timeout, and sanity-bounded here.
        assert!(t0.elapsed() < Duration::from_secs(5), "{backend}");
    }
}

#[test]
fn emfile_storm_at_accept_is_survived_by_every_backend() {
    // The classic fd-exhaustion storm: a burst of EMFILE refusals must
    // never kill the accept path — on the epoll variants via the muted
    // listener, on the workers backend via the sleeping backoff loop.
    let _scope = FaultScope::enter();
    for backend in [
        ServerBackend::Workers,
        ServerBackend::Epoll,
        ServerBackend::EpollSharded(2),
    ] {
        let server = bind(backend, 2, echo_handler());
        let addr = server.addr().to_string();
        fault::fail_next(fault::Op::Accept, 5, fault::EMFILE);
        // Several clients queued behind the storm; all must get through
        // once the "fd table" frees up.
        for i in 0..3 {
            let resp = get(&addr, &format!("/storm{i}"));
            assert_eq!(resp.body_str(), format!("/storm{i}"), "{backend}");
        }
        assert_eq!(fault::pending(fault::Op::Accept), 0, "{backend}");
        assert_eq!(server.stats().accept_errors, 5, "{backend}");
    }
}

#[test]
fn ewouldblock_write_resumption_on_epoll_variants() {
    // Injected EWOULDBLOCK mid-response: the ResponseWriter must park its
    // cursor, the loop must re-arm EPOLLOUT, and the response must arrive
    // byte-intact once the (injected) congestion clears — on both a
    // shared-body response and a prefab wire image.
    let _scope = FaultScope::enter();
    const BODY: usize = 256 << 10;
    let big: Arc<[u8]> = (0..BODY).map(|i| (i % 251) as u8).collect();
    let prefab = Response::with_body(
        Status::OK,
        "application/octet-stream",
        Body::Shared(Arc::clone(&big)),
    )
    .into_prefab();
    let handler: Handler = {
        let big = Arc::clone(&big);
        handler_fn(move |req: Request| match req.path() {
            "/big" => Response::with_body(
                Status::OK,
                "application/octet-stream",
                Body::Shared(Arc::clone(&big)),
            ),
            "/prefab" => prefab.clone(),
            other => Response::error(Status::NOT_FOUND, other),
        })
    };
    for backend in epoll_backends() {
        let server = bind(backend, 2, Arc::clone(&handler));
        let addr = server.addr().to_string();
        for path in ["/big", "/prefab"] {
            let mut stream = TcpStream::connect(&addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            // Arm before the request so the very first write attempt (and
            // the next few resumptions) hit the injected wall.
            fault::fail_next(fault::Op::Write, 4, fault::EAGAIN);
            stream
                .write_all(&rcb_http::serialize::serialize_request(&Request::get(path)))
                .unwrap();
            let resp = rcb_http::client::read_response(&mut stream).unwrap();
            assert_eq!(resp.status, Status::OK, "{backend} {path}");
            assert_eq!(resp.body.len(), BODY, "{backend} {path}");
            assert!(
                resp.body
                    .as_slice()
                    .iter()
                    .enumerate()
                    .all(|(i, b)| *b == (i % 251) as u8),
                "{backend} {path}: body corrupted across resumed writes"
            );
            assert_eq!(
                fault::pending(fault::Op::Write),
                0,
                "{backend} {path}: injected EWOULDBLOCKs were consumed"
            );
        }
    }
}

#[test]
fn scripted_accept_schedule_fails_exact_ordinals() {
    // `fault::script` generalizes the fail-next budget into call-indexed
    // schedules: fail accept calls #1 and #2, let #3 through. On the
    // epoll variants accept runs on readiness (no idle polling), so the
    // ordinals line up with the retry sequence for one waiting client:
    // two muted-and-retried errors, then the served accept.
    let _scope = FaultScope::enter();
    for backend in epoll_backends() {
        let server = bind(backend, 2, echo_handler());
        let addr = server.addr().to_string();
        fault::script(
            fault::Op::Accept,
            &[(1, fault::ECONNABORTED), (2, fault::EMFILE)],
        );
        let resp = get(&addr, "/scripted");
        assert_eq!(resp.body_str(), "/scripted", "{backend}");
        assert_eq!(
            fault::pending(fault::Op::Accept),
            0,
            "{backend}: both scripted ordinals fired"
        );
        assert_eq!(server.stats().accept_errors, 2, "{backend}");
        fault::clear();
        // A script stays armed after its last entry (passthrough): later
        // traffic must be unaffected once cleared.
        let resp = get(&addr, "/after");
        assert_eq!(resp.body_str(), "/after", "{backend}");
    }
}

#[test]
fn seeded_accept_schedule_storms_and_self_disarms() {
    // `fault::seeded` turns the lever probabilistic but reproducible: a
    // Bernoulli storm at accept, capped so it always ends. The workers
    // backend polls its nonblocking listener continuously, so every poll
    // steps the seeded schedule — the cap must be consumed in bounded
    // time, every client must be served through the storm, and the
    // counted accept errors must equal the cap exactly.
    let _scope = FaultScope::enter();
    let server = bind(ServerBackend::Workers, 2, echo_handler());
    let addr = server.addr().to_string();
    const CAP: u64 = 4;
    fault::seeded(fault::Op::Accept, 2009, 0.9, fault::ECONNABORTED, CAP);
    for i in 0..3 {
        let resp = get(&addr, &format!("/seeded{i}"));
        assert_eq!(resp.body_str(), format!("/seeded{i}"));
    }
    // The accept loop keeps polling; the remaining budget drains shortly.
    let t0 = Instant::now();
    while fault::pending(fault::Op::Accept) > 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "seeded schedule failed to drain"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.stats().accept_errors, CAP, "cap = injected errors");
    let resp = get(&addr, "/calm");
    assert_eq!(resp.body_str(), "/calm");
}

#[test]
fn injected_read_reset_drops_the_connection_but_not_the_server() {
    // ECONNRESET surfacing from `read(2)` mid-connection: that one
    // connection dies (no response, clean close) on every backend, and
    // the very next client is served as if nothing happened.
    let _scope = FaultScope::enter();
    for backend in [
        ServerBackend::Workers,
        ServerBackend::Epoll,
        ServerBackend::EpollSharded(2),
    ] {
        let server = bind(backend, 2, echo_handler());
        let addr = server.addr().to_string();
        fault::fail_next(fault::Op::Read, 1, fault::ECONNRESET);
        {
            let mut doomed = TcpStream::connect(&addr).unwrap();
            doomed
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let _ = doomed.write_all(&rcb_http::serialize::serialize_request(&Request::get(
                "/doomed",
            )));
            let mut out = Vec::new();
            let read = doomed.read_to_end(&mut out);
            assert!(
                read.is_err() || out.is_empty(),
                "{backend}: reset connection must not be served, got {} bytes",
                out.len()
            );
        }
        assert_eq!(
            fault::pending(fault::Op::Read),
            0,
            "{backend}: the injected reset was consumed"
        );
        let resp = get(&addr, "/alive");
        assert_eq!(resp.body_str(), "/alive", "{backend}: loop survived");
    }
}

#[test]
fn injected_transient_eagain_on_read_is_absorbed() {
    // EWOULDBLOCK from `read(2)` is ordinary backpressure, not an error:
    // the connection must be kept, readiness must re-fire (level-
    // triggered on the epoll variants, the rotation loop on workers),
    // and the request must complete once the injections drain.
    let _scope = FaultScope::enter();
    for backend in [
        ServerBackend::Workers,
        ServerBackend::Epoll,
        ServerBackend::EpollSharded(2),
    ] {
        let server = bind(backend, 2, echo_handler());
        let addr = server.addr().to_string();
        fault::fail_next(fault::Op::Read, 2, fault::EAGAIN);
        let resp = get(&addr, "/after-eagain");
        assert_eq!(resp.body_str(), "/after-eagain", "{backend}");
        assert_eq!(
            fault::pending(fault::Op::Read),
            0,
            "{backend}: injected EWOULDBLOCKs were consumed"
        );
        fault::clear();
        drop(server);
    }
}

#[test]
fn epoll_ctl_failure_at_register_drops_connection_cleanly() {
    // A refused EPOLL_CTL_ADD at registration costs that one connection
    // (closed, never served) but must not wedge the loop: the next
    // connection registers and is served. Exercised on both variants —
    // on the sharded engine the refused add happens inside the handoff
    // target's loop.
    let _scope = FaultScope::enter();
    for backend in epoll_backends() {
        let server = bind(backend, 2, echo_handler());
        let addr = server.addr().to_string();
        fault::fail_next(fault::Op::EpollCtl, 1, fault::EMFILE);
        {
            let mut doomed = TcpStream::connect(&addr).unwrap();
            doomed
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let _ = doomed.write_all(&rcb_http::serialize::serialize_request(&Request::get(
                "/doomed",
            )));
            // The server dropped the stream at registration: EOF (or a
            // reset) — never a response.
            let mut out = Vec::new();
            let read = doomed.read_to_end(&mut out);
            assert!(
                read.is_err() || out.is_empty(),
                "{backend}: doomed connection must not be served, got {} bytes",
                out.len()
            );
        }
        assert_eq!(fault::pending(fault::Op::EpollCtl), 0, "{backend}");
        let resp = get(&addr, "/alive");
        assert_eq!(resp.body_str(), "/alive", "{backend}: loop survived");
    }
}
