//! Shutdown-drain suite: stopping a server with live connections must be
//! prompt and leak-free.
//!
//! `HttpServer::shutdown` stops every engine thread and joins them in
//! order; on the sharded epoll backend all shards are stopped (flag +
//! waker) **before** the first join, so total drain time is one loop tick,
//! not one per shard. With idle keep-alive connections parked on every
//! shard, shutdown must complete within a bounded time and close every fd
//! the server owned — counted via `/proc/self/fd`, which is why this file
//! is Linux-only (the workers backend is still covered on Linux).
//!
//! fd counting is process-global, so this file keeps everything in a
//! single `#[test]` — a sibling test opening sockets in parallel would
//! make the counts lie.

#![cfg(target_os = "linux")]

use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rcb_http::server::{
    Handler, HandlerOutcome, HttpServer, Park, ServerBackend, ServerConfig, EPOLL_SUPPORTED,
};
use rcb_http::{Request, Response, Status};

fn count_fds() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .expect("/proc/self/fd readable on Linux")
        .count()
}

/// Echoes the target; `/hold*` targets park on a key that is never
/// published, so only shutdown (or the 10 s cap) can complete them.
fn echo_handler() -> Handler {
    Arc::new(|req: Request| {
        if req.target.starts_with("/hold") {
            return HandlerOutcome::Park(Park {
                channel: 0,
                wait_key: u64::MAX - 1,
                max_wait: Duration::from_secs(10),
                on_wake: Box::new(|| {
                    Response::with_body(Status::OK, "text/plain", b"woken".to_vec())
                }),
                on_timeout: Box::new(|| {
                    Response::with_body(Status::OK, "text/plain", b"bye".to_vec())
                }),
            });
        }
        Response::with_body(Status::OK, "text/plain", req.target.into_bytes()).into()
    })
}

#[test]
fn shutdown_with_idle_keepalive_connections_is_bounded_and_leak_free() {
    let mut backends = vec![ServerBackend::Workers];
    if EPOLL_SUPPORTED {
        backends.push(ServerBackend::Epoll);
        backends.push(ServerBackend::EpollSharded(3));
    }
    for backend in backends {
        let shards = backend.shard_count();
        let before = count_fds();
        {
            let mut server = HttpServer::bind_with(
                "127.0.0.1:0",
                echo_handler(),
                ServerConfig::builder().backend(backend).workers(2).build(),
            )
            .unwrap();
            let addr = server.addr().to_string();

            // Keep-alive connections parked on every shard (round-robin
            // puts two per shard), each proven live with one request.
            let mut clients = Vec::new();
            for i in 0..(2 * shards).max(4) {
                let mut conn = rcb_http::client::HttpConnection::connect(&addr).unwrap();
                let resp = conn.round_trip(&Request::get(format!("/park{i}"))).unwrap();
                assert_eq!(resp.body_str(), format!("/park{i}"), "{backend}");
                clients.push(conn);
            }
            if EPOLL_SUPPORTED && matches!(backend, ServerBackend::EpollSharded(_)) {
                let stats = server.stats();
                assert!(
                    stats.connections_per_shard.iter().all(|&c| c > 0),
                    "{backend}: every shard holds a parked connection, got {:?}",
                    stats.connections_per_shard
                );
            }

            // Two long-polls parked mid-request on a key nobody will
            // publish: shutdown must drain them within the same bound,
            // not wait out their 10 s park window.
            let parked: Vec<_> = (0..2)
                .map(|i| {
                    let addr = addr.clone();
                    std::thread::spawn(move || {
                        rcb_http::client::send_request(&addr, &Request::get(format!("/hold{i}")))
                    })
                })
                .collect();
            // Let the park requests reach the engine before stopping it.
            std::thread::sleep(Duration::from_millis(150));

            // Idle clients still open: shutdown must not wait on them.
            let t0 = Instant::now();
            server.shutdown();
            let drained_in = t0.elapsed();
            assert!(
                drained_in < Duration::from_secs(5),
                "{backend}: shutdown took {drained_in:?} with idle keep-alive connections"
            );

            // The parked clients come back promptly — either with the
            // timeout fallback reply (workers drain in place) or a closed
            // connection (event loops drop held slots) — never after the
            // full park window.
            for handle in parked {
                // A connection closed during the drain (Err) is also fine.
                if let Ok(resp) = handle.join().unwrap() {
                    assert_eq!(resp.body_str(), "bye", "{backend}");
                }
            }

            // After shutdown the engine is gone: new connections are
            // refused or die unanswered. (Connect may still succeed
            // briefly if the kernel had the listener queue open; a
            // request must never be answered.)
            if let Ok(mut late) = TcpStream::connect(&addr) {
                use std::io::{Read, Write};
                late.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
                let _ = late.write_all(&rcb_http::serialize::serialize_request(&Request::get(
                    "/late",
                )));
                let mut out = Vec::new();
                let read = late.read_to_end(&mut out);
                assert!(
                    read.is_err() || out.is_empty(),
                    "{backend}: request answered after shutdown"
                );
            }

            // Shutdown is idempotent (Drop will call it again too).
            server.shutdown();
            drop(clients);
        }
        // Every fd the server and its clients owned is closed: listener,
        // per-shard epoll fds, waker socketpairs, connection sockets.
        let after = count_fds();
        assert_eq!(
            after, before,
            "{backend}: fd leak across server lifecycle ({before} -> {after})"
        );
    }
}
