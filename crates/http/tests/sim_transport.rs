//! The production threaded server over the transport seam's fabric side.
//!
//! The world sim drives `SimDriver` in pump mode under virtual time, but
//! the seam also has to carry the *threaded* workers engine unchanged —
//! blocking reads, read-timeout rotation, keep-alive sessions — over
//! fabric connections. These tests run `HttpServer::serve` on a
//! wall-clock [`SimNet`] (handshakes and deliveries mature in real
//! milliseconds) and talk to it with the real [`HttpConnection`] client
//! wrapped around seam connections: the same code paths as a TCP
//! deployment, zero kernel sockets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rcb_http::client::HttpConnection;
use rcb_http::server::{handler_fn, HttpServer, ServerConfig};
use rcb_http::{Request, Response, Status};
use rcb_sim::{LinkModel, LinkSpec, SimNet};
use rcb_util::{Clock, SimDuration};

fn link() -> LinkModel {
    LinkModel::from_spec(LinkSpec::symmetric(
        100_000_000,
        SimDuration::from_millis(1),
    ))
}

fn echo_handler(calls: Arc<AtomicU64>) -> rcb_http::server::Handler {
    handler_fn(move |req: Request| {
        calls.fetch_add(1, Ordering::Relaxed);
        Response::with_body(
            Status::OK,
            "text/plain",
            format!("echo {}", req.path()).into_bytes(),
        )
    })
}

#[test]
fn threaded_workers_serve_fabric_keep_alive_sessions() {
    let net = SimNet::new(Clock::wall(), 4242);
    let listener = net.bind("agent").unwrap();
    let calls = Arc::new(AtomicU64::new(0));
    let mut server = HttpServer::serve(
        listener.into(),
        echo_handler(Arc::clone(&calls)),
        ServerConfig::default(),
    )
    .unwrap();

    // Sequential keep-alive clients, several requests per connection.
    for pid in 0..4 {
        let conn = net
            .connect(&format!("client{pid}"), "agent", link())
            .unwrap();
        let mut http = HttpConnection::from_conn(conn.into()).unwrap();
        for i in 0..3 {
            let path = format!("/hello/{pid}/{i}");
            let resp = http.round_trip(&Request::get(path.clone())).unwrap();
            assert_eq!(resp.status, Status::OK);
            assert_eq!(resp.body_str(), format!("echo {path}"));
        }
    }
    assert_eq!(calls.load(Ordering::Relaxed), 12);
    server.shutdown();
}

#[test]
fn concurrent_fabric_clients_share_the_worker_pool() {
    let net = Arc::new(SimNet::new(Clock::wall(), 777));
    let listener = net.bind("agent").unwrap();
    let calls = Arc::new(AtomicU64::new(0));
    let mut server = HttpServer::serve(
        listener.into(),
        echo_handler(Arc::clone(&calls)),
        ServerConfig::default(),
    )
    .unwrap();

    // Parallel client threads: the workers engine multiplexes fabric
    // connections exactly as it multiplexes sockets.
    let mut threads = Vec::new();
    for pid in 0..8 {
        let net = Arc::clone(&net);
        threads.push(std::thread::spawn(move || {
            let conn = net
                .connect(&format!("client{pid}"), "agent", link())
                .unwrap();
            let mut http = HttpConnection::from_conn(conn.into()).unwrap();
            for i in 0..5 {
                let path = format!("/c/{pid}/{i}");
                let resp = http.round_trip(&Request::get(path.clone())).unwrap();
                assert_eq!(resp.status, Status::OK);
                assert_eq!(resp.body_str(), format!("echo {path}"));
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(calls.load(Ordering::Relaxed), 40);
    server.shutdown();
}

#[test]
fn fabric_peer_disconnect_is_not_an_error() {
    let net = SimNet::new(Clock::wall(), 9);
    let listener = net.bind("agent").unwrap();
    let calls = Arc::new(AtomicU64::new(0));
    let mut server = HttpServer::serve(
        listener.into(),
        echo_handler(Arc::clone(&calls)),
        ServerConfig::default(),
    )
    .unwrap();

    // A client that connects, completes one request, and hangs up: the
    // engine must treat the fabric EOF like a closed socket.
    {
        let conn = net.connect("quitter", "agent", link()).unwrap();
        let mut http = HttpConnection::from_conn(conn.into()).unwrap();
        let resp = http.round_trip(&Request::get("/once")).unwrap();
        assert_eq!(resp.status, Status::OK);
    } // dropped here: fabric close

    // The server keeps serving new fabric connections afterwards.
    let conn = net.connect("next", "agent", link()).unwrap();
    let mut http = HttpConnection::from_conn(conn.into()).unwrap();
    let resp = http.round_trip(&Request::get("/after")).unwrap();
    assert_eq!(resp.body_str(), "echo /after");
    assert_eq!(calls.load(Ordering::Relaxed), 2);
    server.shutdown();
}
