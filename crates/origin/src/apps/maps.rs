//! A tile-grid Ajax mapping application — the Google Maps stand-in.
//!
//! The usability scenario of §5.2.1 needs exactly three behaviours from
//! the mapping site:
//!
//! 1. the page URL never changes while the map content does (Ajax/DHTML) —
//!    this is what makes URL-sharing co-browsing useless on it;
//! 2. panning/zooming swaps the `src` of a grid of small tile images
//!    ("Google Maps actually also uses Ajax to asynchronously retrieve
//!    small images, usually in the size of 256 by 256 pixels");
//! 3. a search form positions the viewport at an address.
//!
//! The app serves the shell page at `/maps`, tile images at
//! `/tiles/{z}/{x}/{y}.png`, and a geocoding endpoint at `/geo?q=...`.

use rcb_http::{Request, Response, Status};
use rcb_util::{DetRng, SimTime};

use crate::server::Origin;

/// Grid dimensions of the visible viewport.
pub const GRID_W: i64 = 4;
/// Grid height of the visible viewport.
pub const GRID_H: i64 = 3;

/// The viewport state a map client tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Viewport {
    /// Tile x of the north-west corner.
    pub x: i64,
    /// Tile y of the north-west corner.
    pub y: i64,
    /// Zoom level (0..=18).
    pub z: u8,
}

impl Viewport {
    /// The `GRID_W × GRID_H` tile coordinates this viewport shows.
    pub fn tiles(&self) -> Vec<(i64, i64, u8)> {
        let mut out = Vec::with_capacity((GRID_W * GRID_H) as usize);
        for dy in 0..GRID_H {
            for dx in 0..GRID_W {
                out.push((self.x + dx, self.y + dy, self.z));
            }
        }
        out
    }

    /// Tile URL path for a coordinate.
    pub fn tile_path(x: i64, y: i64, z: u8) -> String {
        format!("/tiles/{z}/{x}/{y}.png")
    }

    /// Pans the viewport by whole tiles.
    pub fn pan(&self, dx: i64, dy: i64) -> Viewport {
        Viewport {
            x: self.x + dx,
            y: self.y + dy,
            z: self.z,
        }
    }

    /// Zooms in (doubling tile coordinates), clamped at level 18.
    pub fn zoom_in(&self) -> Viewport {
        if self.z >= 18 {
            return *self;
        }
        Viewport {
            x: self.x * 2,
            y: self.y * 2,
            z: self.z + 1,
        }
    }

    /// Zooms out, clamped at level 0.
    pub fn zoom_out(&self) -> Viewport {
        if self.z == 0 {
            return *self;
        }
        Viewport {
            x: self.x / 2,
            y: self.y / 2,
            z: self.z - 1,
        }
    }
}

/// The mapping origin server.
pub struct MapsApp {
    host: String,
    tile_bytes_min: u64,
    tile_bytes_max: u64,
}

impl MapsApp {
    /// Creates the app under `host` (e.g. `maps.example.com`).
    pub fn new(host: impl Into<String>) -> MapsApp {
        MapsApp {
            host: host.into(),
            // 256×256 PNG map tiles of the era: roughly 8–24 KB.
            tile_bytes_min: 8 * 1024,
            tile_bytes_max: 24 * 1024,
        }
    }

    /// Deterministically geocodes a query string to a viewport. The
    /// scenario address ("653 5th Ave, New York") always maps to the same
    /// spot, like a real geocoder would.
    pub fn geocode(query: &str) -> Viewport {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in query.trim().to_ascii_lowercase().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Viewport {
            x: (h % 512) as i64 + 256,
            y: ((h >> 16) % 512) as i64 + 256,
            z: 12,
        }
    }

    /// The map shell page: tile grid plus search form. Tile `src`
    /// attributes point at the viewport's tiles; client-side "script"
    /// (the simulated browser) swaps them on pan/zoom without changing the
    /// page URL.
    pub fn shell_page(&self, vp: Viewport) -> String {
        let mut html = String::with_capacity(4096);
        html.push_str(
            "<!DOCTYPE html><html><head><title>RCB Maps</title>\
             <style>.grid img{width:256px;height:256px}</style>\
             <script type=\"text/javascript\">function pan(dx,dy){/* ajax */return false;}\
             function zoom(d){/* ajax */return false;}</script></head><body>",
        );
        html.push_str(
            "<form id=\"search\" action=\"/geo\" method=\"get\" onsubmit=\"return doSearch()\">\
             <input type=\"text\" name=\"q\" value=\"\"><input type=\"submit\" value=\"Search Maps\">\
             </form>",
        );
        html.push_str("<div class=\"controls\">");
        for (label, js) in [
            ("north", "pan(0,-1)"),
            ("south", "pan(0,1)"),
            ("west", "pan(-1,0)"),
            ("east", "pan(1,0)"),
            ("zoom-in", "zoom(1)"),
            ("zoom-out", "zoom(-1)"),
        ] {
            html.push_str(&format!(
                "<a href=\"#\" id=\"ctl-{label}\" onclick=\"return {js}\">{label}</a> "
            ));
        }
        html.push_str("</div><div class=\"grid\" id=\"tiles\">");
        for (x, y, z) in vp.tiles() {
            html.push_str(&format!(
                "<img id=\"tile-{x}-{y}\" src=\"{}\" alt=\"tile\">",
                Viewport::tile_path(x, y, z)
            ));
        }
        html.push_str(&format!(
            "</div><div id=\"status\">viewport {} {} z{}</div></body></html>",
            vp.x, vp.y, vp.z
        ));
        html
    }

    fn tile_response(&self, x: i64, y: i64, z: u8) -> Response {
        let mut rng =
            DetRng::new((z as u64) << 48 ^ (x as u64 & 0xFFFFFF) << 24 ^ (y as u64 & 0xFFFFFF));
        let size = rng.range_inclusive(self.tile_bytes_min, self.tile_bytes_max) as usize;
        let mut buf = vec![0u8; size];
        rng.fill_bytes(&mut buf);
        buf[..8].copy_from_slice(&[0x89, b'P', b'N', b'G', 0x0d, 0x0a, 0x1a, 0x0a]);
        Response::with_body(Status::OK, "image/png", buf)
    }
}

impl Origin for MapsApp {
    fn host(&self) -> &str {
        &self.host
    }

    fn handle(&mut self, req: &Request, _now: SimTime) -> Response {
        let path = req.path();
        if path == "/" || path == "/maps" {
            let vp = match req.query_param("q") {
                Some(q) if !q.is_empty() => MapsApp::geocode(&q),
                _ => Viewport {
                    x: 300,
                    y: 300,
                    z: 4,
                },
            };
            return Response::html(self.shell_page(vp));
        }
        if path == "/geo" {
            let q = req.query_param("q").unwrap_or_default();
            let vp = MapsApp::geocode(&q);
            let body = format!(
                "<viewport><x>{}</x><y>{}</y><z>{}</z></viewport>",
                vp.x, vp.y, vp.z
            );
            return Response::xml(body);
        }
        if let Some(rest) = path.strip_prefix("/tiles/") {
            let parts: Vec<&str> = rest.trim_end_matches(".png").split('/').collect();
            if let [z, x, y] = parts[..] {
                if let (Ok(z), Ok(x), Ok(y)) = (z.parse::<u8>(), x.parse::<i64>(), y.parse::<i64>())
                {
                    return self.tile_response(x, y, z);
                }
            }
            return Response::error(Status::BAD_REQUEST, "bad tile coordinates");
        }
        Response::error(Status::NOT_FOUND, &format!("no such path {path}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geocode_is_deterministic_and_discriminating() {
        let a = MapsApp::geocode("653 5th Ave, New York");
        let b = MapsApp::geocode("653 5th Ave, New York");
        let c = MapsApp::geocode("1600 Amphitheatre Pkwy");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.z, 12);
    }

    #[test]
    fn viewport_tiles_cover_grid() {
        let vp = Viewport { x: 10, y: 20, z: 5 };
        let tiles = vp.tiles();
        assert_eq!(tiles.len(), (GRID_W * GRID_H) as usize);
        assert!(tiles.contains(&(10, 20, 5)));
        assert!(tiles.contains(&(10 + GRID_W - 1, 20 + GRID_H - 1, 5)));
    }

    #[test]
    fn pan_and_zoom_transform_viewport() {
        let vp = Viewport { x: 10, y: 20, z: 5 };
        assert_eq!(vp.pan(1, -2), Viewport { x: 11, y: 18, z: 5 });
        assert_eq!(vp.zoom_in(), Viewport { x: 20, y: 40, z: 6 });
        assert_eq!(vp.zoom_out(), Viewport { x: 5, y: 10, z: 4 });
        let top = Viewport { x: 1, y: 1, z: 0 };
        assert_eq!(top.zoom_out(), top);
        let deep = Viewport { x: 1, y: 1, z: 18 };
        assert_eq!(deep.zoom_in(), deep);
    }

    #[test]
    fn shell_page_lists_viewport_tiles() {
        let app = MapsApp::new("maps.example.com");
        let vp = Viewport { x: 3, y: 4, z: 2 };
        let page = app.shell_page(vp);
        let doc = rcb_html::parse_document(&page);
        let imgs = rcb_html::query::elements_by_tag(&doc, doc.root(), "img");
        assert_eq!(imgs.len(), (GRID_W * GRID_H) as usize);
        assert!(page.contains("/tiles/2/3/4.png"));
        assert!(page.contains("onclick=\"return pan(0,-1)\""));
    }

    #[test]
    fn tiles_served_deterministically() {
        let mut app = MapsApp::new("maps.example.com");
        let r1 = app.handle(&Request::get("/tiles/5/10/11.png"), SimTime::ZERO);
        let r2 = app.handle(&Request::get("/tiles/5/10/11.png"), SimTime::ZERO);
        assert_eq!(r1.body, r2.body);
        assert!(r1.body.len() >= 8 * 1024 && r1.body.len() <= 24 * 1024);
        assert_eq!(&r1.body[..4], &[0x89, b'P', b'N', b'G']);
        let other = app.handle(&Request::get("/tiles/5/10/12.png"), SimTime::ZERO);
        assert_ne!(r1.body, other.body);
    }

    #[test]
    fn bad_tile_coords_rejected() {
        let mut app = MapsApp::new("m");
        let resp = app.handle(&Request::get("/tiles/zz/1/2.png"), SimTime::ZERO);
        assert_eq!(resp.status, Status::BAD_REQUEST);
    }

    #[test]
    fn geo_endpoint_returns_viewport_xml() {
        let mut app = MapsApp::new("m");
        let resp = app.handle(
            &Request::get("/geo?q=653+5th+Ave%2C+New+York"),
            SimTime::ZERO,
        );
        assert_eq!(resp.content_type().as_deref(), Some("application/xml"));
        let vp = MapsApp::geocode("653 5th Ave, New York");
        assert!(resp.body_str().contains(&format!("<x>{}</x>", vp.x)));
    }

    #[test]
    fn page_url_constant_across_views() {
        // The defining property: '/' serves the shell regardless of
        // viewport; panning never changes the URL.
        let mut app = MapsApp::new("m");
        let a = app.handle(&Request::get("/maps"), SimTime::ZERO);
        let b = app.handle(&Request::get("/maps"), SimTime::ZERO);
        assert_eq!(a.body, b.body);
    }
}
