//! Interactive scenario applications (paper §5.2).

pub mod maps;
pub mod shop;

pub use maps::MapsApp;
pub use shop::ShopApp;
