//! A session-protected storefront — the Amazon.com stand-in.
//!
//! The co-shopping scenario (§5.2.2) requires: searchable catalog pages,
//! product pages, a cart and a multi-step checkout gated behind a session
//! cookie (the paper's point (4): RCB must "support session-protected
//! webpages", which URL-sharing cannot), and a shipping-address form to
//! co-fill.
//!
//! Routes: `/` (home), `/search?q=`, `/product/{id}`, `/cart/add?id=`
//! (needs session), `/cart`, `/checkout` (form), `POST /checkout/shipping`,
//! `POST /checkout/complete`.

use std::collections::HashMap;

use rcb_http::{Request, Response, Status};
use rcb_util::{DetRng, SimTime};

use crate::server::Origin;

/// One catalog product.
#[derive(Debug, Clone)]
pub struct Product {
    /// Catalog id.
    pub id: u32,
    /// Display name.
    pub name: String,
    /// Price in cents.
    pub price_cents: u64,
}

/// Per-session server state.
#[derive(Debug, Default, Clone)]
struct Session {
    cart: Vec<u32>,
    shipping: Option<HashMap<String, String>>,
    completed_orders: u32,
}

/// The storefront origin server.
pub struct ShopApp {
    host: String,
    catalog: Vec<Product>,
    sessions: HashMap<String, Session>,
    next_sid: u64,
}

impl ShopApp {
    /// Creates the app with a deterministic catalog.
    pub fn new(host: impl Into<String>) -> ShopApp {
        let mut rng = DetRng::new(0x5348_4f50); // "SHOP"
        let adjectives = ["Air", "Pro", "Mini", "Max", "Ultra", "Classic"];
        let nouns = ["MacBook", "Notebook", "Tablet", "Reader", "Camera", "Phone"];
        let catalog = (0..36)
            .map(|i| {
                let adj = adjectives[rng.next_below(adjectives.len() as u64) as usize];
                let noun = nouns[(i as usize / 6) % nouns.len()];
                Product {
                    id: i,
                    name: format!("{noun} {adj} {}", 11 + i % 7),
                    price_cents: 19_900 + rng.range_inclusive(0, 180) * 1_000,
                }
            })
            .collect();
        ShopApp {
            host: host.into(),
            catalog,
            sessions: HashMap::new(),
            next_sid: 1,
        }
    }

    /// Looks up a product.
    pub fn product(&self, id: u32) -> Option<&Product> {
        self.catalog.iter().find(|p| p.id == id)
    }

    /// Case-insensitive catalog search.
    pub fn search(&self, query: &str) -> Vec<&Product> {
        let q = query.to_ascii_lowercase();
        self.catalog
            .iter()
            .filter(|p| p.name.to_ascii_lowercase().contains(&q))
            .collect()
    }

    /// Number of completed orders in session `sid` (test/scenario hook).
    pub fn orders_completed(&self, sid: &str) -> u32 {
        self.sessions
            .get(sid)
            .map(|s| s.completed_orders)
            .unwrap_or(0)
    }

    /// Cart contents for session `sid` (test/scenario hook).
    pub fn cart(&self, sid: &str) -> Vec<u32> {
        self.sessions
            .get(sid)
            .map(|s| s.cart.clone())
            .unwrap_or_default()
    }

    fn session_of(&mut self, req: &Request) -> (String, bool) {
        if let Some((_, sid)) = req.cookies().into_iter().find(|(k, _)| k == "sid") {
            if self.sessions.contains_key(&sid) {
                return (sid, false);
            }
        }
        let sid = format!("s{:08x}", self.next_sid.wrapping_mul(0x9E3779B9));
        self.next_sid += 1;
        self.sessions.insert(sid.clone(), Session::default());
        (sid, true)
    }

    fn page(&self, title: &str, body: &str) -> String {
        format!(
            "<!DOCTYPE html><html><head><title>{title} — rcb-shop</title>\
             <link rel=\"stylesheet\" href=\"/assets/shop.css\"></head><body>\
             <div id=\"header\"><h1><a href=\"/\">rcb-shop</a></h1>\
             <form id=\"search\" action=\"/search\" method=\"get\" onsubmit=\"return true\">\
             <input type=\"text\" name=\"q\" value=\"\">\
             <input type=\"submit\" value=\"Go\"></form>\
             <a href=\"/cart\" id=\"cart-link\">Cart</a></div>{body}</body></html>"
        )
    }

    fn product_card(p: &Product) -> String {
        format!(
            "<div class=\"product\" id=\"p{0}\"><a href=\"/product/{0}\">{1}</a>\
             <span class=\"price\">${2}.{3:02}</span>\
             <a href=\"/cart/add?id={0}\" class=\"add\" onclick=\"return addToCart({0})\">Add to cart</a></div>",
            p.id,
            p.name,
            p.price_cents / 100,
            p.price_cents % 100
        )
    }
}

impl Origin for ShopApp {
    fn host(&self) -> &str {
        &self.host
    }

    fn handle(&mut self, req: &Request, _now: SimTime) -> Response {
        let (sid, fresh) = self.session_of(req);
        let path = req.path().to_string();
        let mut resp = match path.as_str() {
            "/" => {
                let featured: String = self
                    .catalog
                    .iter()
                    .take(8)
                    .map(ShopApp::product_card)
                    .collect();
                Response::html(self.page("home", &format!("<div id=\"featured\">{featured}</div>")))
            }
            "/search" => {
                let q = req.query_param("q").unwrap_or_default();
                let hits: Vec<&Product> = self.search(&q);
                let list: String = hits.iter().map(|p| ShopApp::product_card(p)).collect();
                let body = format!(
                    "<h2>{} results for \"{}\"</h2><div id=\"results\">{}</div>",
                    hits.len(),
                    q,
                    list
                );
                Response::html(self.page("search", &body))
            }
            _ if path.starts_with("/product/") => {
                match path["/product/".len()..]
                    .parse::<u32>()
                    .ok()
                    .and_then(|id| self.product(id).cloned())
                {
                    Some(p) => {
                        let body = format!(
                            "<h2>{}</h2><p class=\"price\">${}.{:02}</p>\
                             <img src=\"/assets/product{}.png\" alt=\"photo\">\
                             <a href=\"/cart/add?id={}\" id=\"add\">Add to cart</a>",
                            p.name,
                            p.price_cents / 100,
                            p.price_cents % 100,
                            p.id % 6,
                            p.id
                        );
                        Response::html(self.page(&p.name.clone(), &body))
                    }
                    None => Response::error(Status::NOT_FOUND, "no such product"),
                }
            }
            "/cart/add" => {
                let id = req.query_param("id").and_then(|v| v.parse::<u32>().ok());
                match id.and_then(|id| self.product(id).cloned()) {
                    Some(p) => {
                        self.sessions
                            .get_mut(&sid)
                            .expect("session exists")
                            .cart
                            .push(p.id);
                        Response::with_body(Status::FOUND, "text/html", Vec::new())
                            .with_header("Location", "/cart")
                    }
                    None => Response::error(Status::BAD_REQUEST, "bad product id"),
                }
            }
            "/cart" => {
                let cart = self.cart(&sid);
                let items: String = cart
                    .iter()
                    .filter_map(|&id| self.product(id))
                    .map(|p| {
                        format!(
                            "<li>{} — ${}.{:02}</li>",
                            p.name,
                            p.price_cents / 100,
                            p.price_cents % 100
                        )
                    })
                    .collect();
                let body = format!(
                    "<h2>Your cart ({} items)</h2><ul id=\"cart\">{}</ul>\
                     <a href=\"/checkout\" id=\"checkout\">Proceed to checkout</a>",
                    cart.len(),
                    items
                );
                Response::html(self.page("cart", &body))
            }
            "/checkout" => {
                if self.cart(&sid).is_empty() {
                    Response::error(Status::FORBIDDEN, "cart is empty")
                } else {
                    let body = "<h2>Checkout — shipping address</h2>\
                        <form id=\"shipping\" action=\"/checkout/shipping\" method=\"post\" \
                        onsubmit=\"return validateShipping()\">\
                        <input type=\"text\" name=\"fullname\" value=\"\">\
                        <input type=\"text\" name=\"street\" value=\"\">\
                        <input type=\"text\" name=\"city\" value=\"\">\
                        <input type=\"text\" name=\"zip\" value=\"\">\
                        <input type=\"submit\" value=\"Continue\"></form>";
                    Response::html(self.page("checkout", body))
                }
            }
            "/checkout/shipping" => {
                let fields: HashMap<String, String> =
                    rcb_url::percent::parse_query(&String::from_utf8_lossy(&req.body))
                        .into_iter()
                        .collect();
                if fields.get("street").is_none_or(|s| s.is_empty()) {
                    Response::error(Status::BAD_REQUEST, "street is required")
                } else {
                    self.sessions
                        .get_mut(&sid)
                        .expect("session exists")
                        .shipping = Some(fields);
                    let body = "<h2>Confirm order</h2>\
                        <form id=\"confirm\" action=\"/checkout/complete\" method=\"post\">\
                        <input type=\"submit\" value=\"Place order\"></form>";
                    Response::html(self.page("confirm", body))
                }
            }
            "/checkout/complete" => {
                let sess = self.sessions.get_mut(&sid).expect("session exists");
                if sess.shipping.is_none() || sess.cart.is_empty() {
                    Response::error(Status::FORBIDDEN, "incomplete checkout state")
                } else {
                    sess.completed_orders += 1;
                    sess.cart.clear();
                    sess.shipping = None;
                    Response::html(self.page(
                        "thank you",
                        "<h2 id=\"confirmation\">Order placed — thank you!</h2>",
                    ))
                }
            }
            _ if path.starts_with("/assets/") => {
                let mut rng = DetRng::new(path.len() as u64);
                let size = if path.ends_with(".css") {
                    6 * 1024
                } else {
                    rng.range_inclusive(4 * 1024, 20 * 1024) as usize
                };
                let mut buf = vec![b'x'; size];
                if path.ends_with(".png") {
                    buf[..4].copy_from_slice(&[0x89, b'P', b'N', b'G']);
                    Response::with_body(Status::OK, "image/png", buf)
                } else {
                    Response::with_body(Status::OK, "text/css", buf)
                }
            }
            _ => Response::error(Status::NOT_FOUND, &format!("no such path {path}")),
        };
        if fresh {
            resp = resp.with_header("Set-Cookie", format!("sid={sid}; Path=/"));
        }
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_sid(req: Request, sid: &str) -> Request {
        req.with_header("Cookie", format!("sid={sid}"))
    }

    fn extract_sid(resp: &Response) -> String {
        resp.headers
            .get("set-cookie")
            .expect("fresh session sets cookie")
            .split(';')
            .next()
            .unwrap()
            .trim_start_matches("sid=")
            .to_string()
    }

    #[test]
    fn first_visit_issues_session_cookie() {
        let mut app = ShopApp::new("shop.example.com");
        let resp = app.handle(&Request::get("/"), SimTime::ZERO);
        assert!(resp.status.is_success());
        let sid = extract_sid(&resp);
        assert!(sid.starts_with('s'));
        // Subsequent request with the cookie does not reissue.
        let r2 = app.handle(&with_sid(Request::get("/"), &sid), SimTime::ZERO);
        assert!(r2.headers.get("set-cookie").is_none());
    }

    #[test]
    fn search_finds_catalog_items() {
        let app = ShopApp::new("shop");
        let hits = app.search("macbook");
        assert!(!hits.is_empty());
        assert!(hits
            .iter()
            .all(|p| p.name.to_lowercase().contains("macbook")));
        assert!(app.search("zzzz-nothing").is_empty());
    }

    #[test]
    fn full_checkout_flow() {
        let mut app = ShopApp::new("shop");
        let home = app.handle(&Request::get("/"), SimTime::ZERO);
        let sid = extract_sid(&home);

        // Search → product → add to cart.
        let results = app.handle(
            &with_sid(Request::get("/search?q=macbook"), &sid),
            SimTime::ZERO,
        );
        assert!(results.body_str().contains("results for"));
        let pid = app.search("macbook")[0].id;
        let add = app.handle(
            &with_sid(Request::get(format!("/cart/add?id={pid}")), &sid),
            SimTime::ZERO,
        );
        assert_eq!(add.status, Status::FOUND);
        assert_eq!(app.cart(&sid), vec![pid]);

        // Checkout: shipping form → confirm → complete.
        let checkout = app.handle(&with_sid(Request::get("/checkout"), &sid), SimTime::ZERO);
        assert!(checkout.body_str().contains("id=\"shipping\""));
        let shipping = app.handle(
            &with_sid(
                Request::post(
                    "/checkout/shipping",
                    b"fullname=Alice&street=1+Main+St&city=NYC&zip=10001".to_vec(),
                ),
                &sid,
            ),
            SimTime::ZERO,
        );
        assert!(shipping.body_str().contains("id=\"confirm\""));
        let complete = app.handle(
            &with_sid(Request::post("/checkout/complete", Vec::new()), &sid),
            SimTime::ZERO,
        );
        assert!(complete.body_str().contains("Order placed"));
        assert_eq!(app.orders_completed(&sid), 1);
        assert!(app.cart(&sid).is_empty());
    }

    #[test]
    fn checkout_requires_cart_and_shipping() {
        let mut app = ShopApp::new("shop");
        let home = app.handle(&Request::get("/"), SimTime::ZERO);
        let sid = extract_sid(&home);
        let checkout = app.handle(&with_sid(Request::get("/checkout"), &sid), SimTime::ZERO);
        assert_eq!(checkout.status, Status::FORBIDDEN);
        let complete = app.handle(
            &with_sid(Request::post("/checkout/complete", Vec::new()), &sid),
            SimTime::ZERO,
        );
        assert_eq!(complete.status, Status::FORBIDDEN);
    }

    #[test]
    fn shipping_validates_street() {
        let mut app = ShopApp::new("shop");
        let home = app.handle(&Request::get("/"), SimTime::ZERO);
        let sid = extract_sid(&home);
        app.handle(
            &with_sid(Request::get("/cart/add?id=0"), &sid),
            SimTime::ZERO,
        );
        let bad = app.handle(
            &with_sid(
                Request::post("/checkout/shipping", b"fullname=Bob&street=".to_vec()),
                &sid,
            ),
            SimTime::ZERO,
        );
        assert_eq!(bad.status, Status::BAD_REQUEST);
    }

    #[test]
    fn sessions_are_isolated() {
        let mut app = ShopApp::new("shop");
        let a = extract_sid(&app.handle(&Request::get("/"), SimTime::ZERO));
        let b = extract_sid(&app.handle(&Request::get("/"), SimTime::ZERO));
        assert_ne!(a, b);
        app.handle(&with_sid(Request::get("/cart/add?id=1"), &a), SimTime::ZERO);
        assert_eq!(app.cart(&a).len(), 1);
        assert!(app.cart(&b).is_empty());
    }

    #[test]
    fn product_pages_and_assets() {
        let mut app = ShopApp::new("shop");
        let p = app.handle(&Request::get("/product/3"), SimTime::ZERO);
        assert!(p.status.is_success());
        let missing = app.handle(&Request::get("/product/999"), SimTime::ZERO);
        assert_eq!(missing.status, Status::NOT_FOUND);
        let css = app.handle(&Request::get("/assets/shop.css"), SimTime::ZERO);
        assert_eq!(css.content_type().as_deref(), Some("text/css"));
        let img = app.handle(&Request::get("/assets/product1.png"), SimTime::ZERO);
        assert_eq!(img.content_type().as_deref(), Some("image/png"));
    }
}
