//! Simulated origin web servers.
//!
//! The paper evaluates RCB against the live homepages of 20 Alexa top
//! sites (Table 1) and two interactive applications — Google Maps and
//! Amazon.com (§5.2). None of those can be fetched here, so this crate
//! rebuilds the *behaviours* the evaluation depends on:
//!
//! * [`sites`] — a deterministic generator producing synthetic homepages
//!   whose HTML document sizes match Table 1 byte-for-kilobyte, plus
//!   per-site supplementary object manifests (images/CSS/JS);
//! * [`server`] — the [`Origin`] trait and a static-site server;
//! * [`apps::maps`] — a tile-grid Ajax mapping app (constant URL, content
//!   updated by asynchronous tile fetches — the property that defeats
//!   URL-sharing co-browsing, §5.2.1);
//! * [`apps::shop`] — a session-protected storefront with search, cart and
//!   multi-step checkout forms (the co-shopping scenario, §5.2.2);
//! * [`registry`] — a host-name → server routing table standing in for DNS
//!   plus the Internet.

pub mod apps;
pub mod registry;
pub mod server;
pub mod sites;

pub use registry::OriginRegistry;
pub use server::{Origin, StaticSiteServer};
pub use sites::{alexa20, SiteSpec};
