//! Host-name routing: the simulation's stand-in for DNS + the Internet.

use std::collections::HashMap;

use rcb_http::{Request, Response, Status};
use rcb_util::SimTime;

use crate::server::Origin;

/// Routes requests to registered origin servers by host name.
#[derive(Default)]
pub struct OriginRegistry {
    servers: HashMap<String, Box<dyn Origin>>,
}

impl OriginRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        OriginRegistry::default()
    }

    /// Registers a server under its own host name.
    pub fn register(&mut self, server: Box<dyn Origin>) {
        self.servers.insert(server.host().to_string(), server);
    }

    /// Registers every Alexa-20 synthetic site.
    pub fn with_alexa20() -> Self {
        let mut r = OriginRegistry::new();
        for spec in crate::sites::alexa20() {
            r.register(Box::new(crate::server::StaticSiteServer::new(spec)));
        }
        r
    }

    /// Dispatches a request to `host`, or 404s for unknown hosts
    /// (unresolvable DNS).
    pub fn dispatch(&mut self, host: &str, req: &Request, now: SimTime) -> Response {
        match self.servers.get_mut(host) {
            Some(server) => server.handle(req, now),
            None => Response::error(Status::NOT_FOUND, &format!("unknown host {host}")),
        }
    }

    /// Whether `host` resolves.
    pub fn knows(&self, host: &str) -> bool {
        self.servers.contains_key(host)
    }

    /// Registered host names (unordered).
    pub fn hosts(&self) -> Vec<&str> {
        self.servers.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexa20_all_resolve() {
        let mut r = OriginRegistry::with_alexa20();
        assert_eq!(r.hosts().len(), 20);
        assert!(r.knows("google.com"));
        let resp = r.dispatch("google.com", &Request::get("/"), SimTime::ZERO);
        assert!(resp.status.is_success());
    }

    #[test]
    fn unknown_host_is_404() {
        let mut r = OriginRegistry::new();
        assert!(!r.knows("nosuch.example"));
        let resp = r.dispatch("nosuch.example", &Request::get("/"), SimTime::ZERO);
        assert_eq!(resp.status, Status::NOT_FOUND);
    }
}
