//! The [`Origin`] trait and the static-site server.

use std::collections::HashMap;

use rcb_http::{Request, Response, Status};
use rcb_util::SimTime;

use crate::sites::{generate_homepage, generate_object, SiteSpec};

/// A simulated origin web server.
///
/// Implementations receive parsed requests and return full responses; the
/// network simulator charges wire time separately from the profile's
/// `origin_think`.
pub trait Origin {
    /// The host name this origin answers for.
    fn host(&self) -> &str;

    /// Handles one request at simulated time `now`.
    fn handle(&mut self, req: &Request, now: SimTime) -> Response;
}

/// Serves one synthetic Alexa site: the homepage at `/` plus its object
/// manifest, and simple section/story pages so navigation works.
pub struct StaticSiteServer {
    spec: SiteSpec,
    homepage: String,
    objects: HashMap<String, (String, Vec<u8>)>,
}

impl StaticSiteServer {
    /// Builds the server for `spec`, pre-generating all content.
    pub fn new(spec: SiteSpec) -> StaticSiteServer {
        let homepage = generate_homepage(&spec);
        let mut objects = HashMap::new();
        for obj in &spec.objects {
            objects.insert(
                format!("/{}", obj.path),
                (
                    obj.kind.content_type().to_string(),
                    generate_object(obj, spec.index),
                ),
            );
        }
        StaticSiteServer {
            spec,
            homepage,
            objects,
        }
    }

    /// The underlying site spec.
    pub fn spec(&self) -> &SiteSpec {
        &self.spec
    }
}

impl Origin for StaticSiteServer {
    fn host(&self) -> &str {
        self.spec.name
    }

    fn handle(&mut self, req: &Request, _now: SimTime) -> Response {
        let path = req.path();
        if path == "/" || path == "/index.html" {
            return Response::html(self.homepage.clone());
        }
        if let Some((ct, body)) = self.objects.get(path) {
            return Response::with_body(Status::OK, ct, body.clone());
        }
        // Section/story/search pages: small generated pages so host
        // navigation beyond the homepage works in scenarios.
        if path.starts_with("/section/") || path.starts_with("/story/") || path == "/search" {
            let title = format!("{} — {}", self.spec.name, path.trim_start_matches('/'));
            let q = req.query_param("q").unwrap_or_default();
            let body = format!(
                "<!DOCTYPE html><html><head><title>{title}</title></head><body>\
                 <h1>{title}</h1><p>query: {q}</p>\
                 <p><a href=\"/\">back to {}</a></p></body></html>",
                self.spec.name
            );
            return Response::html(body);
        }
        Response::error(Status::NOT_FOUND, &format!("no such path {path}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::site_by_index;

    #[test]
    fn homepage_served_at_root() {
        let mut s = StaticSiteServer::new(site_by_index(2).unwrap());
        let resp = s.handle(&Request::get("/"), SimTime::ZERO);
        assert!(resp.status.is_success());
        assert_eq!(resp.content_type().as_deref(), Some("text/html"));
        assert_eq!(resp.body.len() as u64, s.spec().html_size.as_bytes());
    }

    #[test]
    fn objects_served_with_types() {
        let mut s = StaticSiteServer::new(site_by_index(1).unwrap());
        let spec = s.spec().clone();
        for obj in spec.objects.iter().take(5) {
            let resp = s.handle(&Request::get(format!("/{}", obj.path)), SimTime::ZERO);
            assert!(resp.status.is_success(), "{}", obj.path);
            assert_eq!(
                resp.content_type().as_deref(),
                Some(obj.kind.content_type())
            );
            assert_eq!(resp.body.len() as u64, obj.size.as_bytes());
        }
    }

    #[test]
    fn missing_path_is_404() {
        let mut s = StaticSiteServer::new(site_by_index(2).unwrap());
        let resp = s.handle(&Request::get("/definitely/not/here"), SimTime::ZERO);
        assert_eq!(resp.status, Status::NOT_FOUND);
    }

    #[test]
    fn section_pages_navigate() {
        let mut s = StaticSiteServer::new(site_by_index(4).unwrap());
        let resp = s.handle(&Request::get("/section/3"), SimTime::ZERO);
        assert!(resp.status.is_success());
        assert!(resp.body_str().contains("section/3"));
        let search = s.handle(&Request::get("/search?q=laptop"), SimTime::ZERO);
        assert!(search.body_str().contains("laptop"));
    }
}
