//! Synthetic Alexa-20 homepage generator.
//!
//! Table 1 of the paper fixes the HTML document size of each site's
//! homepage (e.g. yahoo.com at 130.3 KB, google.com at 6.8 KB). M1–M6 all
//! depend on document size, supplementary-object mix, and markup structure
//! — not on the actual 2009 content — so the generator produces, for each
//! site, a deterministic homepage that:
//!
//! * hits the Table-1 HTML size to the byte (structure + filler + an exact
//!   padding comment);
//! * carries a realistic object manifest (stylesheets, scripts, images)
//!   whose count scales with page size;
//! * contains the constructs the RCB pipeline must handle: relative URLs,
//!   inline styles/scripts, forms with `onsubmit`, links with `onclick`,
//!   comments, and entity-bearing text.

use rcb_util::{ByteSize, DetRng};

/// Kind of a supplementary object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    /// A stylesheet (`text/css`).
    Css,
    /// A script (`application/javascript`).
    Js,
    /// An image (`image/png`).
    Img,
}

impl ObjectKind {
    /// MIME type served for this kind.
    pub fn content_type(&self) -> &'static str {
        match self {
            ObjectKind::Css => "text/css",
            ObjectKind::Js => "application/javascript",
            ObjectKind::Img => "image/png",
        }
    }
}

/// One supplementary object of a synthetic site.
#[derive(Debug, Clone)]
pub struct ObjectSpec {
    /// Site-relative path (e.g. `assets/img7.png`).
    pub path: String,
    /// Object kind.
    pub kind: ObjectKind,
    /// Body size.
    pub size: ByteSize,
}

/// One synthetic site.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Table-1 row index (1-based).
    pub index: usize,
    /// Site host name (doubles as the simulated DNS name).
    pub name: &'static str,
    /// Table-1 HTML document size.
    pub html_size: ByteSize,
    /// Supplementary objects referenced by the homepage.
    pub objects: Vec<ObjectSpec>,
}

/// Table 1, column "Page Size (KB)".
pub const TABLE1_SIZES_KB: [(usize, &str, f64); 20] = [
    (1, "yahoo.com", 130.3),
    (2, "google.com", 6.8),
    (3, "youtube.com", 69.2),
    (4, "live.com", 20.9),
    (5, "msn.com", 49.6),
    (6, "myspace.com", 53.2),
    (7, "wikipedia.org", 51.7),
    (8, "facebook.com", 23.2),
    (9, "yahoo.co.jp", 101.4),
    (10, "ebay.com", 50.5),
    (11, "aol.com", 71.3),
    (12, "mail.ru", 83.8),
    (13, "amazon.com", 228.5),
    (14, "cnn.com", 109.4),
    (15, "espn.go.com", 110.9),
    (16, "free.fr", 70.0),
    (17, "adobe.com", 37.3),
    (18, "apple.com", 10.0),
    (19, "about.com", 35.8),
    (20, "nytimes.com", 120.0),
];

/// Builds the 20 site specs with deterministic object manifests.
pub fn alexa20() -> Vec<SiteSpec> {
    let mut rng = DetRng::new(0x5243_4221); // "RCB!"
    TABLE1_SIZES_KB
        .iter()
        .map(|&(index, name, kb)| {
            let mut site_rng = rng.fork(index as u64);
            let html_size = ByteSize::kib_f64(kb);
            let objects = object_manifest(&mut site_rng, kb);
            SiteSpec {
                index,
                name,
                html_size,
                objects,
            }
        })
        .collect()
}

/// Finds a site spec by Table-1 index (1-based).
pub fn site_by_index(index: usize) -> Option<SiteSpec> {
    alexa20().into_iter().find(|s| s.index == index)
}

fn object_manifest(rng: &mut DetRng, kb: f64) -> Vec<ObjectSpec> {
    // Object count scales with page size; clamped to a 2009-plausible
    // range (google ≈ 9 objects, amazon ≈ 70).
    let count = ((6.0 + kb / 3.5) as u64).clamp(6, 70);
    let css_count = (count / 12).clamp(1, 4);
    let js_count = (count / 8).clamp(2, 8);
    let img_count = count - css_count - js_count;
    let mut out = Vec::with_capacity(count as usize);
    for i in 0..css_count {
        out.push(ObjectSpec {
            path: format!("assets/style{i}.css"),
            kind: ObjectKind::Css,
            size: ByteSize::bytes(rng.range_inclusive(4 * 1024, 28 * 1024)),
        });
    }
    for i in 0..js_count {
        out.push(ObjectSpec {
            path: format!("assets/app{i}.js"),
            kind: ObjectKind::Js,
            size: ByteSize::bytes(rng.range_inclusive(8 * 1024, 56 * 1024)),
        });
    }
    for i in 0..img_count {
        out.push(ObjectSpec {
            path: format!("assets/img{i}.png"),
            kind: ObjectKind::Img,
            size: ByteSize::bytes(rng.range_inclusive(1024, 36 * 1024)),
        });
    }
    out
}

/// Deterministic filler words used to pad pages to their Table-1 size.
const WORDS: [&str; 24] = [
    "browse", "session", "realtime", "network", "content", "update", "script", "frame", "shared",
    "widget", "portal", "market", "travel", "sports", "finance", "weather", "signup", "mobile",
    "search", "photos", "videos", "social", "stream", "latest",
];

/// Generates the homepage HTML for a site, sized exactly to
/// `spec.html_size` bytes.
pub fn generate_homepage(spec: &SiteSpec) -> String {
    let mut rng = DetRng::new(0xC0FFEE ^ spec.index as u64);
    let target = spec.html_size.as_bytes() as usize;
    let mut html = String::with_capacity(target + 1024);
    html.push_str("<!DOCTYPE html>");
    html.push_str(&format!(
        "<html lang=\"en\"><head><title>{} — home</title>",
        spec.name
    ));
    html.push_str("<meta charset=\"utf-8\">");
    html.push_str(&format!(
        "<meta name=\"description\" content=\"synthetic homepage of {}\">",
        spec.name
    ));
    for obj in &spec.objects {
        match obj.kind {
            ObjectKind::Css => html.push_str(&format!(
                "<link rel=\"stylesheet\" type=\"text/css\" href=\"{}\">",
                obj.path
            )),
            ObjectKind::Js => html.push_str(&format!(
                "<script type=\"text/javascript\" src=\"{}\"></script>",
                obj.path
            )),
            ObjectKind::Img => {}
        }
    }
    html.push_str("<style>body{margin:0;font:13px sans-serif}.nav{background:#eee}</style>");
    html.push_str(
        "<script type=\"text/javascript\">function track(e){/* analytics */return true;}</script>",
    );
    html.push_str("</head><body class=\"home\" onload=\"track('load')\">");
    html.push_str("<!-- masthead -->");
    html.push_str(&format!(
        "<div id=\"masthead\"><h1>{}</h1><form id=\"q\" action=\"/search\" method=\"get\" \
         onsubmit=\"return track('search')\"><input type=\"text\" name=\"q\" value=\"\">\
         <input type=\"submit\" value=\"Search\"></form></div>",
        spec.name
    ));
    // Navigation with onclick handlers (the event-rewriting workload).
    html.push_str("<ul class=\"nav\">");
    for i in 0..8 {
        html.push_str(&format!(
            "<li><a href=\"/section/{i}\" onclick=\"return track('nav{i}')\">{}</a></li>",
            WORDS[i % WORDS.len()]
        ));
    }
    html.push_str("</ul>");
    // Image-bearing story blocks referencing the object manifest.
    let images: Vec<&ObjectSpec> = spec
        .objects
        .iter()
        .filter(|o| o.kind == ObjectKind::Img)
        .collect();
    for (i, img) in images.iter().enumerate() {
        html.push_str(&format!(
            "<div class=\"story\" id=\"story{i}\"><img src=\"{}\" alt=\"story {i}\" \
             width=\"120\" height=\"90\"><h2><a href=\"/story/{i}\">{} &amp; {}</a></h2>",
            img.path,
            WORDS[rng.next_below(WORDS.len() as u64) as usize],
            WORDS[rng.next_below(WORDS.len() as u64) as usize],
        ));
        html.push_str("<p>");
        for _ in 0..rng.range_inclusive(8, 20) {
            html.push_str(WORDS[rng.next_below(WORDS.len() as u64) as usize]);
            html.push(' ');
        }
        html.push_str("</p></div>");
    }
    let closing = "</body></html>";
    // Filler paragraphs to approach the Table-1 size.
    let para_open = "<p class=\"filler\">";
    let para_close = "</p>";
    loop {
        let remaining = target
            .saturating_sub(html.len())
            .saturating_sub(closing.len());
        if remaining < para_open.len() + para_close.len() + 160 {
            break;
        }
        html.push_str(para_open);
        let budget = (remaining - para_open.len() - para_close.len()).min(220);
        let mut used = 0;
        while used + 8 < budget {
            let w = WORDS[rng.next_below(WORDS.len() as u64) as usize];
            html.push_str(w);
            html.push(' ');
            used += w.len() + 1;
        }
        html.push_str(para_close);
    }
    // Exact-size pad comment: "<!--" + pad + "-->".
    let remaining = target
        .saturating_sub(html.len())
        .saturating_sub(closing.len());
    if remaining >= 7 {
        html.push_str("<!--");
        for _ in 0..remaining - 7 {
            html.push('p');
        }
        html.push_str("-->");
    } else {
        for _ in 0..remaining {
            html.push(' ');
        }
    }
    html.push_str(closing);
    debug_assert_eq!(html.len(), target);
    html
}

/// Generates the body of a supplementary object, sized per its spec.
pub fn generate_object(spec: &ObjectSpec, site_index: usize) -> Vec<u8> {
    let size = spec.size.as_bytes() as usize;
    match spec.kind {
        ObjectKind::Css => {
            let mut s = String::with_capacity(size);
            let mut i = 0;
            while s.len() + 64 < size {
                s.push_str(&format!(
                    ".c{i} {{ margin: {}px; padding: 2px; color: #{:06x}; }}\n",
                    i % 17,
                    (i * 2654435761u64 as usize) & 0xFFFFFF
                ));
                i += 1;
            }
            while s.len() < size {
                s.push(' ');
            }
            s.into_bytes()
        }
        ObjectKind::Js => {
            let mut s = String::with_capacity(size);
            let mut i = 0usize;
            while s.len() + 72 < size {
                s.push_str(&format!(
                    "function f{i}(a,b){{ return a*{} + b - f{}(a|0, b|0); }}\n",
                    i + 1,
                    i.saturating_sub(1)
                ));
                i += 1;
            }
            while s.len() < size {
                s.push(' ');
            }
            s.into_bytes()
        }
        ObjectKind::Img => {
            let mut rng = DetRng::new((site_index as u64) << 32 | spec.size.as_bytes());
            let mut buf = vec![0u8; size];
            rng.fill_bytes(&mut buf);
            // PNG magic so content sniffing would classify it as an image.
            let magic = [0x89u8, b'P', b'N', b'G', 0x0d, 0x0a, 0x1a, 0x0a];
            let n = magic.len().min(buf.len());
            buf[..n].copy_from_slice(&magic[..n]);
            buf
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_sites_match_table1() {
        let sites = alexa20();
        assert_eq!(sites.len(), 20);
        assert_eq!(sites[0].name, "yahoo.com");
        assert_eq!(sites[0].html_size, ByteSize::kib_f64(130.3));
        assert_eq!(sites[12].name, "amazon.com");
        assert_eq!(sites[12].html_size, ByteSize::kib_f64(228.5));
    }

    #[test]
    fn homepage_hits_exact_size() {
        for spec in alexa20() {
            let html = generate_homepage(&spec);
            assert_eq!(
                html.len() as u64,
                spec.html_size.as_bytes(),
                "size mismatch for {}",
                spec.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_homepage(&site_by_index(14).unwrap());
        let b = generate_homepage(&site_by_index(14).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn homepage_parses_and_references_objects() {
        let spec = site_by_index(1).unwrap(); // yahoo, large
        let html = generate_homepage(&spec);
        let doc = rcb_html::parse_document(&html);
        assert!(doc.body().is_some());
        let urls = rcb_html::query::collect_supplementary_urls(&doc, doc.root());
        // Every CSS/JS and at least most images must be referenced.
        for obj in &spec.objects {
            if obj.kind != ObjectKind::Img {
                assert!(urls.contains(&obj.path), "{} not referenced", obj.path);
            }
        }
        let img_refs = urls.iter().filter(|u| u.ends_with(".png")).count();
        assert!(img_refs > 0);
    }

    #[test]
    fn object_count_scales_with_page_size() {
        let google = site_by_index(2).unwrap();
        let amazon = site_by_index(13).unwrap();
        assert!(google.objects.len() < amazon.objects.len());
        assert!(google.objects.len() >= 6);
        assert!(amazon.objects.len() <= 70);
    }

    #[test]
    fn objects_generate_to_spec_size() {
        let spec = site_by_index(5).unwrap();
        for obj in spec.objects.iter().take(6) {
            let body = generate_object(obj, spec.index);
            assert_eq!(body.len() as u64, obj.size.as_bytes(), "{}", obj.path);
        }
    }

    #[test]
    fn images_carry_png_magic() {
        let spec = site_by_index(3).unwrap();
        let img = spec
            .objects
            .iter()
            .find(|o| o.kind == ObjectKind::Img)
            .unwrap();
        let body = generate_object(img, spec.index);
        assert_eq!(&body[..4], &[0x89, b'P', b'N', b'G']);
    }

    #[test]
    fn homepages_contain_event_attributes_and_forms() {
        let html = generate_homepage(&site_by_index(8).unwrap());
        assert!(html.contains("onsubmit="));
        assert!(html.contains("onclick="));
        assert!(html.contains("<form"));
    }
}
