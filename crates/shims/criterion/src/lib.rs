//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real criterion
//! cannot be fetched. This shim keeps the workspace's `harness = false`
//! benches compiling and running with the same source: benchmark groups,
//! `bench_function` / `bench_with_input`, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a few warmup iterations, then
//! `sample_size` timed iterations, reporting mean time per iteration (and
//! throughput when declared). When invoked by `cargo test` (the runner
//! passes `--test`), each benchmark body runs exactly once as a smoke test.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-exported like criterion's: an identity function the optimizer must
/// assume reads/writes its argument.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness-less bench binaries with `--test`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 100,
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample size must be >= 1");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be >= 1");
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher {
            samples: if self.criterion.test_mode { 1 } else { samples },
            warmup: if self.criterion.test_mode { 0 } else { 3 },
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id.id);
        if self.criterion.test_mode {
            println!("test-mode {label}: ok (1 iteration)");
            return;
        }
        let per_iter = bencher.mean;
        match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                let mibps = n as f64 / per_iter.as_secs_f64() / (1024.0 * 1024.0);
                println!("{label}: {per_iter:?}/iter ({mibps:.1} MiB/s)");
            }
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                let eps = n as f64 / per_iter.as_secs_f64();
                println!("{label}: {per_iter:?}/iter ({eps:.0} elem/s)");
            }
            _ => println!("{label}: {per_iter:?}/iter"),
        }
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: usize,
    warmup: usize,
    mean: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
