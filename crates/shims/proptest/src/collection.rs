//! `proptest::collection` — vec strategy.

use std::ops::Range;

use crate::rng::Rng;
use crate::strategy::Strategy;

pub struct VecStrategy<S> {
    inner: S,
    len: Range<usize>,
}

/// `collection::vec(strategy, len_range)` — a vec whose length is drawn
/// from `len_range` and whose elements come from `strategy`.
pub fn vec<S: Strategy>(inner: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { inner, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let n = rng.range_usize(self.len.start, self.len.end.max(self.len.start + 1));
        (0..n).map(|_| self.inner.generate(rng)).collect()
    }
}
