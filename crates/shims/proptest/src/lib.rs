//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real proptest cannot
//! be fetched. This shim implements the subset of its API that the
//! workspace's property tests use, with the same names and shapes:
//!
//! * the `proptest!` macro (each test body runs for `PROPTEST_CASES`
//!   deterministic cases; default 64);
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`;
//! * string strategies given as regex patterns (`".{0,200}"`,
//!   `"\\PC{0,300}"`, char classes with ranges/negation/`&&` intersection,
//!   groups, alternation, `?`/`*`/`+`/`{m,n}` quantifiers);
//! * integer range strategies (`0u64..1000`), `any::<T>()`,
//!   `collection::vec(strategy, len_range)`, tuple strategies, and
//!   `sample::select(vec![..])`.
//!
//! There is no shrinking: failures panic with the case number, and every
//! case is derived deterministically from the test name, so a failure
//! reproduces exactly on re-run.

pub mod collection;
pub mod regex_gen;
pub mod rng;
pub mod sample;
pub mod strategy;

pub use rng::Rng;
pub use strategy::{any, Any, Strategy};

/// Number of generated cases per property (override with `PROPTEST_CASES`).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-case RNG: seeded from the test name and case index so
/// every run (and every failure) is exactly reproducible.
pub fn test_rng(test_name: &str, case: usize) -> Rng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Rng::new(seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The real proptest prelude re-exposes the crate as `prop`.
    pub use crate as prop;
}

#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                for case in 0..cases {
                    let mut __rng = $crate::test_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let run = || -> () { $body };
                    run();
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}
