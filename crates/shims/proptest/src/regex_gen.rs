//! Generation of strings matching a regex pattern.
//!
//! Proptest treats `&str` strategies as regexes and generates matching
//! strings; this module reimplements that for the pattern subset the
//! workspace's tests use: literals, `.`, `\PC` (printable — not Unicode
//! category C), escaped metacharacters, character classes with ranges,
//! negation and `&&` intersection, groups, alternation, and the
//! `?`/`*`/`+`/`{m}`/`{m,n}` quantifiers.

use crate::rng::Rng;

const UNICODE_SAMPLE: &[char] = &[
    'à', 'é', 'î', 'õ', 'ü', 'ß', 'Δ', 'λ', 'Ж', 'щ', '中', '文', '日', '本', '語', '한', '글',
    '€', '™', '←', '☃', '🙂', '🦀', '𝄞',
];
const CONTROL_SAMPLE: &[char] = &['\t', '\r', '\u{0}', '\u{1}', '\u{1b}', '\u{7f}'];

#[derive(Debug, Clone)]
enum Node {
    Concat(Vec<Node>),
    Alt(Vec<Node>),
    Repeat(Box<Node>, u32, u32),
    Literal(char),
    /// `.` — any char except `\n`.
    Dot,
    /// `\PC` — any char not in Unicode category C (roughly: printable).
    NotControl,
    /// A materialized character class.
    Class(Vec<char>),
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut Rng) -> String {
    let node = Parser::new(pattern).parse();
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

fn emit(node: &Node, rng: &mut Rng, out: &mut String) {
    match node {
        Node::Concat(parts) => parts.iter().for_each(|p| emit(p, rng, out)),
        Node::Alt(arms) => {
            let i = rng.range_usize(0, arms.len());
            emit(&arms[i], rng, out);
        }
        Node::Repeat(inner, lo, hi) => {
            let n = *lo + rng.below((*hi - *lo + 1) as u64) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
        Node::Literal(c) => out.push(*c),
        Node::Dot => out.push(match rng.below(100) {
            0..=74 => (0x20 + rng.below(0x5f) as u8) as char,
            75..=89 => *rng.pick(UNICODE_SAMPLE),
            _ => *rng.pick(CONTROL_SAMPLE),
        }),
        Node::NotControl => out.push(match rng.below(100) {
            0..=69 => (0x20 + rng.below(0x5f) as u8) as char,
            _ => *rng.pick(UNICODE_SAMPLE),
        }),
        Node::Class(chars) => out.push(*rng.pick(chars)),
    }
}

struct Parser<'a> {
    pattern: &'a str,
    chars: Vec<char>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser {
            pattern,
            chars: pattern.chars().collect(),
            pos: 0,
        }
    }

    fn fail(&self, msg: &str) -> ! {
        panic!(
            "unsupported regex pattern {:?} at char {}: {}",
            self.pattern, self.pos, msg
        );
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> char {
        let c = self
            .chars
            .get(self.pos)
            .copied()
            .unwrap_or_else(|| self.fail("unexpected end"));
        self.pos += 1;
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse(mut self) -> Node {
        let node = self.parse_alt();
        if self.pos != self.chars.len() {
            self.fail("trailing input");
        }
        node
    }

    fn parse_alt(&mut self) -> Node {
        let mut arms = vec![self.parse_concat()];
        while self.eat('|') {
            arms.push(self.parse_concat());
        }
        if arms.len() == 1 {
            arms.pop().unwrap()
        } else {
            Node::Alt(arms)
        }
    }

    fn parse_concat(&mut self) -> Node {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.parse_repeat());
        }
        if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Node::Concat(parts)
        }
    }

    fn parse_repeat(&mut self) -> Node {
        let atom = self.parse_atom();
        match self.peek() {
            Some('?') => {
                self.bump();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('*') => {
                self.bump();
                Node::Repeat(Box::new(atom), 0, 8)
            }
            Some('+') => {
                self.bump();
                Node::Repeat(Box::new(atom), 1, 8)
            }
            Some('{') => {
                self.bump();
                let lo = self.parse_number();
                let hi = if self.eat(',') {
                    self.parse_number()
                } else {
                    lo
                };
                if !self.eat('}') {
                    self.fail("expected '}'");
                }
                Node::Repeat(Box::new(atom), lo, hi)
            }
            _ => atom,
        }
    }

    fn parse_number(&mut self) -> u32 {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            self.fail("expected number");
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .unwrap()
    }

    fn parse_atom(&mut self) -> Node {
        match self.bump() {
            '(' => {
                // Swallow non-capturing group markers.
                if self.peek() == Some('?') && self.chars.get(self.pos + 1) == Some(&':') {
                    self.pos += 2;
                }
                let inner = self.parse_alt();
                if !self.eat(')') {
                    self.fail("expected ')'");
                }
                inner
            }
            '[' => self.parse_class(),
            '\\' => self.parse_escape(),
            '.' => Node::Dot,
            c @ ('*' | '+' | '?' | '{' | '}') => self.fail(&format!("dangling quantifier {c:?}")),
            c => Node::Literal(c),
        }
    }

    fn parse_escape(&mut self) -> Node {
        match self.bump() {
            'P' => {
                // `\PC` / `\P{C}` — complement of a one-letter category; only
                // category C (control/format/unassigned) is supported.
                let cat = if self.eat('{') {
                    let c = self.bump();
                    if !self.eat('}') {
                        self.fail("expected '}' after category");
                    }
                    c
                } else {
                    self.bump()
                };
                if cat != 'C' {
                    self.fail(&format!("unsupported category \\P{cat}"));
                }
                Node::NotControl
            }
            'n' => Node::Literal('\n'),
            'r' => Node::Literal('\r'),
            't' => Node::Literal('\t'),
            '0' => Node::Literal('\u{0}'),
            c => Node::Literal(c),
        }
    }

    /// Parses `[...]`: one or more `&&`-separated segments, each a plain
    /// item list (with optional `^` negation) or a nested `[...]` class.
    /// The result is materialized as the intersection of all segments.
    fn parse_class(&mut self) -> Node {
        let mut segments: Vec<(bool, Vec<(char, char)>)> = Vec::new();
        loop {
            if self.peek() == Some('[') {
                self.bump();
                segments.push(self.parse_class_segment(']'));
                if !self.eat(']') {
                    self.fail("expected ']' for nested class");
                }
            } else {
                segments.push(self.parse_class_segment(']'));
            }
            if self.eat(']') {
                break;
            }
            if self.peek() == Some('&') && self.chars.get(self.pos + 1) == Some(&'&') {
                self.pos += 2;
                continue;
            }
            self.fail("expected ']' or '&&'");
        }

        // Universe to materialize over: printable ASCII plus the unicode
        // sample (enough for the patterns the tests use).
        let universe: Vec<char> = (0x20u8..=0x7e)
            .map(|b| b as char)
            .chain(UNICODE_SAMPLE.iter().copied())
            .collect();
        let member = |c: char, seg: &(bool, Vec<(char, char)>)| {
            let inside = seg.1.iter().any(|&(lo, hi)| c >= lo && c <= hi);
            inside != seg.0
        };
        let chars: Vec<char> = universe
            .into_iter()
            .filter(|&c| segments.iter().all(|seg| member(c, seg)))
            .collect();
        if chars.is_empty() {
            self.fail("empty character class");
        }
        Node::Class(chars)
    }

    /// Parses class items up to (not consuming) `terminator` or `&&`.
    fn parse_class_segment(&mut self, terminator: char) -> (bool, Vec<(char, char)>) {
        let negated = self.eat('^');
        let mut ranges = Vec::new();
        loop {
            let c = match self.peek() {
                None => self.fail("unterminated class"),
                Some(c) if c == terminator => break,
                Some('&') if self.chars.get(self.pos + 1) == Some(&'&') => break,
                Some(_) => self.bump(),
            };
            let lo = if c == '\\' { self.class_escape() } else { c };
            // A `-` is a range operator only between two items.
            if self.peek() == Some('-')
                && self
                    .chars
                    .get(self.pos + 1)
                    .is_some_and(|&n| n != terminator)
            {
                self.bump();
                let c2 = self.bump();
                let hi = if c2 == '\\' { self.class_escape() } else { c2 };
                if hi < lo {
                    self.fail("inverted class range");
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        (negated, ranges)
    }

    fn class_escape(&mut self) -> char {
        match self.bump() {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            '0' => '\u{0}',
            c => c,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, seed: u64) -> String {
        generate(pattern, &mut Rng::new(seed))
    }

    #[test]
    fn literal_and_quantifiers() {
        assert_eq!(gen("abc", 1), "abc");
        for seed in 0..20 {
            let s = gen("a{2,4}", seed);
            assert!(
                (2..=4).contains(&s.len()) && s.chars().all(|c| c == 'a'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn classes_ranges_and_negation() {
        for seed in 0..50 {
            let s = gen("[a-z0-9]{1,12}", seed);
            assert!(!s.is_empty() && s.len() <= 12);
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()),
                "{s:?}"
            );
        }
    }

    #[test]
    fn class_intersection() {
        for seed in 0..200 {
            let s = gen("[ -~&&[^\"&]]{0,20}", seed);
            assert!(
                s.chars()
                    .all(|c| (' '..='~').contains(&c) && c != '"' && c != '&'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn alternation_and_groups() {
        for seed in 0..50 {
            let s = gen(
                "(\\.\\./|\\./)?([a-z]{1,8}/){0,3}[a-z]{0,8}(\\?[a-z=&]{0,10})?",
                seed,
            );
            // Shape check only: every char must be from the legal alphabet.
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || matches!(c, '.' | '/' | '?' | '=' | '&')),
                "{s:?}"
            );
        }
    }

    #[test]
    fn printable_excludes_controls() {
        for seed in 0..50 {
            let s = gen("\\PC{0,300}", seed);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn dot_excludes_newline() {
        for seed in 0..50 {
            assert!(!gen(".{0,200}", seed).contains('\n'));
        }
    }
}
