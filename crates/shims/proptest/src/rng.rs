//! Deterministic splitmix64 RNG for case generation.

/// A small deterministic RNG (splitmix64).
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}
