//! `proptest::sample` — select-one-of strategy.

use crate::rng::Rng;
use crate::strategy::Strategy;

pub struct Select<T> {
    items: Vec<T>,
}

/// `sample::select(vec![..])` — picks one of the given values per case.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select() needs at least one item");
    Select { items }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut Rng) -> T {
        rng.pick(&self.items).clone()
    }
}
