//! The `Strategy` trait and the built-in strategies.

use std::ops::Range;

use crate::regex_gen;
use crate::rng::Rng;

/// A generator of test-case values. The real proptest `Strategy` carries a
/// value tree for shrinking; this shim only generates.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut Rng) -> Self::Value;
}

/// A `&str` strategy is a regex pattern producing matching strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut Rng) -> String {
        regex_gen::generate(self, rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as u128 % span as u128) as i128;
                    ((self.start as i128) + off) as $t
                }
            }
        )*
    };
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+);)*) => {
        $(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*
    };
}
tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// Marker returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — an arbitrary value of a primitive type.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! any_int {
    ($($t:ty),*) => {
        $(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
