//! Ordered event queue for session simulations.
//!
//! Drives the co-browsing world in `rcb-core`: polling timers, page-load
//! completions, and user think-time events all flow through one queue,
//! popped in (time, insertion order) sequence so simulations are
//! deterministic even when events collide on the same instant.

use std::collections::BinaryHeap;

use rcb_util::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on (time, seq).
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic min-heap of timed events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(t(5), 1);
        q.push(t(5), 2);
        q.push(t(5), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.peek_time().is_none());
    }
}
