//! HTTP fetch cost model over a [`Pipe`].
//!
//! Encodes the timing pattern of one HTTP exchange (connect → request up →
//! server think → response down) and of a browser fetching many
//! supplementary objects over a small pool of persistent parallel
//! connections — Firefox 3 used 6 per server, which is the default here.

use rcb_util::{SimDuration, SimTime};

use crate::link::{Direction, Pipe};

/// Result of a simulated fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchCost {
    /// When the last byte of the response arrived.
    pub completed_at: SimTime,
    /// Total bytes moved (request + response).
    pub bytes_moved: usize,
}

/// One request/response exchange on an already-connected pipe.
///
/// `server_time` is the peer's processing time between receiving the
/// request and starting to send the response.
pub fn request_response(
    pipe: &mut Pipe,
    start: SimTime,
    request_bytes: usize,
    response_bytes: usize,
    server_time: SimDuration,
) -> FetchCost {
    let req_arrival = pipe.transfer(start, request_bytes, Direction::Up);
    let resp_start = req_arrival + server_time;
    let resp_arrival = pipe.transfer(resp_start, response_bytes, Direction::Down);
    FetchCost {
        completed_at: resp_arrival,
        bytes_moved: request_bytes + response_bytes,
    }
}

/// Fetches `objects` (each `(request_bytes, response_bytes)`) over up to
/// `connections` parallel persistent connections sharing `pipe`.
///
/// Objects are assigned to the connection that frees up first; each
/// connection pays one TCP handshake when first used. Returns the time the
/// last object completes.
pub fn fetch_many(
    pipe: &mut Pipe,
    start: SimTime,
    objects: &[(usize, usize)],
    connections: usize,
    server_time: SimDuration,
) -> FetchCost {
    assert!(connections > 0, "need at least one connection");
    if objects.is_empty() {
        return FetchCost {
            completed_at: start,
            bytes_moved: 0,
        };
    }
    // Per-connection "free at" times; connections are created lazily.
    let mut free_at: Vec<SimTime> = Vec::new();
    let mut last_done = start;
    let mut bytes = 0usize;
    for &(req, resp) in objects {
        // Pick the connection available earliest, or open a new one.
        let slot = if free_at.len() < connections {
            free_at.push(pipe.connect(start));
            free_at.len() - 1
        } else {
            let (idx, _) = free_at
                .iter()
                .enumerate()
                .min_by_key(|(_, &t)| t)
                .expect("free_at is non-empty");
            idx
        };
        let begin = free_at[slot];
        let cost = request_response(pipe, begin, req, resp, server_time);
        free_at[slot] = cost.completed_at;
        last_done = last_done.max(cost.completed_at);
        bytes += cost.bytes_moved;
    }
    FetchCost {
        completed_at: last_done,
        bytes_moved: bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;

    fn pipe(bps: u64, latency_ms: u64) -> Pipe {
        Pipe::new(LinkSpec::symmetric(
            bps,
            SimDuration::from_millis(latency_ms),
        ))
    }

    #[test]
    fn single_round_trip_accounting() {
        let mut p = pipe(8_000_000, 10);
        let c = request_response(
            &mut p,
            SimTime::ZERO,
            1_000,   // 1 ms serialization
            100_000, // 100 ms serialization
            SimDuration::from_millis(50),
        );
        // 1 + 10 (request) + 50 (server) + 100 + 10 (response) = 171 ms.
        assert_eq!(c.completed_at.as_millis(), 171);
        assert_eq!(c.bytes_moved, 101_000);
    }

    #[test]
    fn empty_object_list_is_free() {
        let mut p = pipe(1_000_000, 10);
        let c = fetch_many(&mut p, SimTime::from_millis(5), &[], 6, SimDuration::ZERO);
        assert_eq!(c.completed_at.as_millis(), 5);
        assert_eq!(c.bytes_moved, 0);
    }

    #[test]
    fn parallel_connections_overlap_latency() {
        // Tiny objects, large latency: with one connection the RTTs stack;
        // with six they overlap.
        let objects = vec![(100, 100); 6];
        let mut p1 = pipe(100_000_000, 50);
        let serial = fetch_many(&mut p1, SimTime::ZERO, &objects, 1, SimDuration::ZERO);
        let mut p2 = pipe(100_000_000, 50);
        let parallel = fetch_many(&mut p2, SimTime::ZERO, &objects, 6, SimDuration::ZERO);
        assert!(
            parallel.completed_at < serial.completed_at,
            "parallel {} !< serial {}",
            parallel.completed_at,
            serial.completed_at
        );
    }

    #[test]
    fn bandwidth_bound_work_cannot_be_parallelized() {
        // Large objects on a slow link: completion is dominated by total
        // serialization, so 1 vs 6 connections ends within one latency.
        let objects = vec![(100, 50_000); 4];
        let mut p1 = pipe(1_000_000, 1);
        let serial = fetch_many(&mut p1, SimTime::ZERO, &objects, 1, SimDuration::ZERO);
        let mut p2 = pipe(1_000_000, 1);
        let parallel = fetch_many(&mut p2, SimTime::ZERO, &objects, 6, SimDuration::ZERO);
        let diff = serial.completed_at.since(parallel.completed_at).as_millis();
        assert!(diff < 20, "diff was {diff} ms");
    }

    #[test]
    fn total_bytes_accumulate() {
        let objects = vec![(10, 90), (20, 80)];
        let mut p = pipe(1_000_000, 1);
        let c = fetch_many(&mut p, SimTime::ZERO, &objects, 2, SimDuration::ZERO);
        assert_eq!(c.bytes_moved, 200);
    }
}
