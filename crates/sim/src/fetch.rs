//! HTTP fetch cost model over a [`Pipe`].
//!
//! Encodes the timing pattern of one HTTP exchange (connect → request up →
//! server think → response down). The old standalone multi-connection
//! object-fetch model (`fetch_many`) is gone: parallel object fetches are
//! now exercised for real by the deterministic world sim
//! (`rcb-core`'s `worldsim`), which drives the actual client/server stack
//! over simulated connections instead of a closed-form cost formula.

use rcb_util::{SimDuration, SimTime};

use crate::link::{Direction, Pipe};

/// Result of a simulated fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchCost {
    /// When the last byte of the response arrived.
    pub completed_at: SimTime,
    /// Total bytes moved (request + response).
    pub bytes_moved: usize,
}

/// One request/response exchange on an already-connected pipe.
///
/// `server_time` is the peer's processing time between receiving the
/// request and starting to send the response.
pub fn request_response(
    pipe: &mut Pipe,
    start: SimTime,
    request_bytes: usize,
    response_bytes: usize,
    server_time: SimDuration,
) -> FetchCost {
    let req_arrival = pipe.transfer(start, request_bytes, Direction::Up);
    let resp_start = req_arrival + server_time;
    let resp_arrival = pipe.transfer(resp_start, response_bytes, Direction::Down);
    FetchCost {
        completed_at: resp_arrival,
        bytes_moved: request_bytes + response_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;

    fn pipe(bps: u64, latency_ms: u64) -> Pipe {
        Pipe::new(LinkSpec::symmetric(
            bps,
            SimDuration::from_millis(latency_ms),
        ))
    }

    #[test]
    fn single_round_trip_accounting() {
        let mut p = pipe(8_000_000, 10);
        let c = request_response(
            &mut p,
            SimTime::ZERO,
            1_000,   // 1 ms serialization
            100_000, // 100 ms serialization
            SimDuration::from_millis(50),
        );
        // 1 + 10 (request) + 50 (server) + 100 + 10 (response) = 171 ms.
        assert_eq!(c.completed_at.as_millis(), 171);
        assert_eq!(c.bytes_moved, 101_000);
    }
}
