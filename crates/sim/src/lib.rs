//! Discrete-event network simulator.
//!
//! The paper's network-bound metrics (M1–M4: document load, document
//! synchronization, and supplementary-object download times) were measured
//! in a 100 Mbps campus LAN and a 1.5 Mbps/384 Kbps home WAN (§5.1.2).
//! This crate reproduces those environments as virtual-time links:
//!
//! * [`link`] — a [`link::Pipe`] models one bidirectional path with
//!   per-direction bandwidth, one-way latency, and FIFO serialization
//!   (`busy-until` bookkeeping), so concurrent transfers share bandwidth
//!   the way a bottleneck link forces them to;
//! * [`fetch`] — the HTTP cost model layered on a pipe: TCP handshake,
//!   request upload, server think time, response download;
//! * [`profiles`] — the LAN/WAN environments of §5.1.2, a mobile profile
//!   for the paper's Fennec/N810 future-work experiment, and loopback;
//! * [`events`] — the ordered event queue that drives session simulations;
//! * [`world`] — the deterministic world: a seeded in-process network
//!   fabric ([`world::SimNet`]) of named hosts, [`world::SimConn`] byte
//!   streams with seeded latency/jitter/loss from a [`link::LinkModel`],
//!   partition/heal controls, and virtual-time advancement — the transport
//!   the real server/client stack runs over with zero sockets.

pub mod events;
pub mod fetch;
pub mod link;
pub mod profiles;
pub mod world;

pub use events::EventQueue;
pub use fetch::{request_response, FetchCost};
pub use link::{LinkModel, LinkSpec, Pipe};
pub use profiles::NetProfile;
pub use world::{SimConn, SimListener, SimNet, World};
