//! Discrete-event network simulator.
//!
//! The paper's network-bound metrics (M1–M4: document load, document
//! synchronization, and supplementary-object download times) were measured
//! in a 100 Mbps campus LAN and a 1.5 Mbps/384 Kbps home WAN (§5.1.2).
//! This crate reproduces those environments as virtual-time links:
//!
//! * [`link`] — a [`link::Pipe`] models one bidirectional path with
//!   per-direction bandwidth, one-way latency, and FIFO serialization
//!   (`busy-until` bookkeeping), so concurrent transfers share bandwidth
//!   the way a bottleneck link forces them to;
//! * [`fetch`] — the HTTP cost model layered on a pipe: TCP handshake,
//!   request upload, server think time, response download, plus the
//!   parallel-connection object-fetch pattern browsers use;
//! * [`profiles`] — the LAN/WAN environments of §5.1.2, a mobile profile
//!   for the paper's Fennec/N810 future-work experiment, and loopback;
//! * [`events`] — the ordered event queue that drives session simulations.

pub mod events;
pub mod fetch;
pub mod link;
pub mod profiles;

pub use events::EventQueue;
pub use fetch::{fetch_many, request_response, FetchCost};
pub use link::{LinkSpec, Pipe};
pub use profiles::NetProfile;
