//! Bandwidth/latency links with FIFO serialization.

use rcb_util::{SimDuration, SimTime};

/// Static description of one bidirectional network path.
///
/// Directions are named from the *client's* perspective: `up` carries
/// client→server traffic, `down` carries server→client traffic. Latency is
/// one-way propagation delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Client→server bandwidth in bits per second.
    pub up_bps: u64,
    /// Server→client bandwidth in bits per second.
    pub down_bps: u64,
    /// One-way propagation delay.
    pub latency: SimDuration,
}

impl LinkSpec {
    /// A symmetric link.
    pub fn symmetric(bps: u64, latency: SimDuration) -> LinkSpec {
        LinkSpec {
            up_bps: bps,
            down_bps: bps,
            latency,
        }
    }

    /// Round-trip time.
    pub fn rtt(&self) -> SimDuration {
        self.latency + self.latency
    }

    /// Pure serialization time for `bytes` at `bps`.
    pub fn serialization(bytes: usize, bps: u64) -> SimDuration {
        assert!(bps > 0, "bandwidth must be positive");
        SimDuration::from_micros((bytes as u128 * 8 * 1_000_000 / bps as u128) as u64)
    }
}

/// A [`LinkSpec`] plus the stochastic knobs the world sim draws from a
/// seeded RNG per connection: jitter, loss, and reordering.
///
/// The fabric models a *TCP byte stream*, so loss and reordering never
/// drop or permute delivered bytes — they surface as added delay: a
/// jitter/reorder draw perturbs a segment's computed arrival (later
/// segments may "overtake" it on the wire), and in-order delivery is
/// restored by head-of-line blocking (arrivals are clamped monotone per
/// direction); a loss draw charges a retransmission penalty on top.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Deterministic bandwidth/latency description.
    pub spec: LinkSpec,
    /// Maximum extra one-way delay drawn uniformly per segment
    /// (jitter + wire reordering, flattened by head-of-line blocking).
    pub jitter: SimDuration,
    /// Per-segment loss probability (0.0 = lossless).
    pub loss: f64,
    /// Delay charged when a segment is "lost" (retransmission timeout).
    pub loss_penalty: SimDuration,
}

impl LinkModel {
    /// A faithful (jitter-free, lossless) model of `spec`.
    pub fn from_spec(spec: LinkSpec) -> LinkModel {
        LinkModel {
            spec,
            jitter: SimDuration::ZERO,
            loss: 0.0,
            loss_penalty: SimDuration::from_millis(200),
        }
    }

    /// Adds uniform per-segment jitter up to `jitter`.
    pub fn with_jitter(mut self, jitter: SimDuration) -> LinkModel {
        self.jitter = jitter;
        self
    }

    /// Adds per-segment loss with probability `loss` (each loss charges
    /// `loss_penalty` of retransmission delay).
    pub fn with_loss(mut self, loss: f64, loss_penalty: SimDuration) -> LinkModel {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.loss = loss;
        self.loss_penalty = loss_penalty;
        self
    }
}

/// Direction of a transfer over a [`Pipe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client → server.
    Up,
    /// Server → client.
    Down,
}

/// Dynamic state of one path: FIFO `busy-until` per direction.
///
/// A transfer occupies its direction exclusively for its serialization
/// time; concurrent transfers queue behind it. Propagation latency overlaps
/// freely (it is added after serialization completes). This is the standard
/// store-and-forward bottleneck-link approximation.
#[derive(Debug, Clone)]
pub struct Pipe {
    /// The static link description.
    pub spec: LinkSpec,
    busy_up_until: SimTime,
    busy_down_until: SimTime,
}

impl Pipe {
    /// Creates an idle pipe.
    pub fn new(spec: LinkSpec) -> Pipe {
        Pipe {
            spec,
            busy_up_until: SimTime::ZERO,
            busy_down_until: SimTime::ZERO,
        }
    }

    /// Schedules a transfer of `bytes` starting no earlier than `start`;
    /// returns the arrival time at the far end.
    pub fn transfer(&mut self, start: SimTime, bytes: usize, dir: Direction) -> SimTime {
        let (bps, busy) = match dir {
            Direction::Up => (self.spec.up_bps, &mut self.busy_up_until),
            Direction::Down => (self.spec.down_bps, &mut self.busy_down_until),
        };
        let begin = start.max(*busy);
        let done_serializing = begin + LinkSpec::serialization(bytes, bps);
        *busy = done_serializing;
        done_serializing + self.spec.latency
    }

    /// TCP connection establishment: client sends SYN at `start`, may send
    /// data after receiving SYN-ACK — one RTT later. (Handshake segments
    /// are negligibly small; only latency is charged.)
    pub fn connect(&self, start: SimTime) -> SimTime {
        start + self.spec.rtt()
    }

    /// Resets FIFO state (used between experiment repetitions).
    pub fn reset(&mut self) {
        self.busy_up_until = SimTime::ZERO;
        self.busy_down_until = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn serialization_arithmetic() {
        // 1 MB over 8 Mbps = 1 second.
        let d = LinkSpec::serialization(1_000_000, 8_000_000);
        assert_eq!(d.as_millis(), 1000);
        // Zero bytes take zero time.
        assert_eq!(LinkSpec::serialization(0, 1000), SimDuration::ZERO);
    }

    #[test]
    fn single_transfer_includes_latency() {
        let mut p = Pipe::new(LinkSpec::symmetric(8_000_000, ms(10)));
        let arrival = p.transfer(SimTime::ZERO, 1_000_000, Direction::Down);
        assert_eq!(arrival.as_millis(), 1000 + 10);
    }

    #[test]
    fn concurrent_transfers_serialize_per_direction() {
        let mut p = Pipe::new(LinkSpec::symmetric(8_000_000, ms(0)));
        let a = p.transfer(SimTime::ZERO, 1_000_000, Direction::Down);
        let b = p.transfer(SimTime::ZERO, 1_000_000, Direction::Down);
        assert_eq!(a.as_millis(), 1000);
        assert_eq!(b.as_millis(), 2000); // queued behind a
    }

    #[test]
    fn directions_are_independent() {
        let mut p = Pipe::new(LinkSpec::symmetric(8_000_000, ms(0)));
        let down = p.transfer(SimTime::ZERO, 1_000_000, Direction::Down);
        let up = p.transfer(SimTime::ZERO, 1_000_000, Direction::Up);
        assert_eq!(down.as_millis(), 1000);
        assert_eq!(up.as_millis(), 1000); // no queuing across directions
    }

    #[test]
    fn asymmetric_link_charges_each_direction() {
        // The paper's WAN: 1.5 Mbps down, 384 Kbps up.
        let spec = LinkSpec {
            up_bps: 384_000,
            down_bps: 1_500_000,
            latency: ms(0),
        };
        let mut p = Pipe::new(spec);
        let up = p.transfer(SimTime::ZERO, 48_000, Direction::Up);
        let down = p.transfer(SimTime::ZERO, 48_000, Direction::Down);
        assert_eq!(up.as_millis(), 1000); // 384 kbit / 384 kbps
        assert_eq!(down.as_millis(), 256); // 384 kbit / 1.5 Mbps
    }

    #[test]
    fn connect_costs_one_rtt() {
        let p = Pipe::new(LinkSpec::symmetric(1_000_000, ms(25)));
        assert_eq!(p.connect(SimTime::ZERO).as_millis(), 50);
    }

    #[test]
    fn reset_clears_queues() {
        let mut p = Pipe::new(LinkSpec::symmetric(8_000, ms(0)));
        p.transfer(SimTime::ZERO, 1_000_000, Direction::Down);
        p.reset();
        let a = p.transfer(SimTime::ZERO, 1_000, Direction::Down);
        assert_eq!(a.as_millis(), 1000); // 8 kbit / 8 kbps
    }

    #[test]
    fn transfer_starts_no_earlier_than_start() {
        let mut p = Pipe::new(LinkSpec::symmetric(8_000_000, ms(5)));
        let arrival = p.transfer(SimTime::from_millis(100), 1_000, Direction::Up);
        assert_eq!(arrival.as_millis(), 100 + 1 + 5);
    }
}
