//! Network environment profiles.
//!
//! §5.1.2 of the paper describes two testbeds:
//!
//! * **LAN** — host and participant PCs "resided in the same campus
//!   network" on 100 Mbps Ethernet, each "directly connected to the
//!   Internet";
//! * **WAN** — host and participant in "two geographically separated
//!   homes", both on "slow speed Internet access services with 1.5 Mbps
//!   download speed and 384 Kbps upload speed".
//!
//! A profile carries the three paths a co-browsing session exercises —
//! host↔origin (M1), participant↔host (M2/M4), participant↔origin (M3) —
//! plus the origin-side cost model. The cost model matters for shape
//! fidelity: a 2009 portal homepage was dynamically generated
//! (time-to-first-byte grows with page complexity), reached through DNS +
//! redirect chains, and usually delivered gzip-compressed, while RCB's
//! newContent XML travels uncompressed and JS-escaped. Those asymmetries
//! are exactly what makes M2 < M1 for most sites yet lets the largest WAN
//! pages cross over (Figure 7's "17 out of 20").

use rcb_util::SimDuration;

use crate::link::{LinkModel, LinkSpec};

/// A complete network environment for one experiment.
#[derive(Debug, Clone)]
pub struct NetProfile {
    /// Human-readable name used in reports ("LAN", "WAN", ...).
    pub name: &'static str,
    /// Host browser ↔ origin web server.
    pub host_origin: LinkSpec,
    /// Participant browser ↔ origin web server.
    pub participant_origin: LinkSpec,
    /// Participant browser ↔ host browser (the RCB path).
    pub host_participant: LinkSpec,
    /// Origin think time for an HTML document: fixed part (backend
    /// generation, redirects).
    pub origin_think_base: SimDuration,
    /// Origin think time for an HTML document: per-KB part (generation
    /// scales with page complexity).
    pub origin_think_per_kb: SimDuration,
    /// Origin think time for a supplementary object (static/CDN-served).
    pub object_think: SimDuration,
    /// One-time navigation overhead: DNS resolution + redirect hop.
    pub first_request_overhead: SimDuration,
    /// Fraction of HTML body bytes actually on the wire (gzip).
    pub html_wire_ratio: f64,
    /// Fraction of CSS/JS body bytes on the wire (gzip).
    pub text_asset_wire_ratio: f64,
    /// Number of parallel connections a browser opens per server.
    pub browser_connections: usize,
}

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

impl NetProfile {
    /// The campus-LAN environment of Figures 6/8.
    ///
    /// Host↔participant: 100 Mbps Ethernet, sub-millisecond latency.
    /// Campus↔Internet: a good 2009 university uplink (~20 Mbps effective
    /// per flow) with wide-area latency to the Alexa sites.
    pub fn lan() -> NetProfile {
        NetProfile {
            name: "LAN",
            host_origin: LinkSpec::symmetric(20_000_000, ms(40)),
            participant_origin: LinkSpec::symmetric(20_000_000, ms(40)),
            host_participant: LinkSpec::symmetric(100_000_000, SimDuration::from_micros(150)),
            origin_think_base: ms(1000),
            origin_think_per_kb: ms(12),
            object_think: ms(30),
            first_request_overhead: ms(250),
            html_wire_ratio: 0.6,
            text_asset_wire_ratio: 0.35,
            browser_connections: 6,
        }
    }

    /// The home-WAN environment of Figure 7.
    ///
    /// Each home: 1.5 Mbps down / 384 Kbps up. Home↔home traffic is
    /// bottlenecked by the sender's 384 Kbps uplink in both directions —
    /// exactly why the paper sees larger M2 in the WAN ("the upload link
    /// speed at the host PC side was slow").
    pub fn wan() -> NetProfile {
        NetProfile {
            name: "WAN",
            host_origin: LinkSpec {
                up_bps: 384_000,
                down_bps: 1_500_000,
                latency: ms(50),
            },
            participant_origin: LinkSpec {
                up_bps: 384_000,
                down_bps: 1_500_000,
                latency: ms(50),
            },
            host_participant: LinkSpec {
                // min(sender up 384k, receiver down 1.5M) in each direction.
                up_bps: 384_000,
                down_bps: 384_000,
                latency: ms(40),
            },
            origin_think_base: ms(1000),
            origin_think_per_kb: ms(12),
            object_think: ms(30),
            first_request_overhead: ms(500),
            html_wire_ratio: 0.6,
            text_asset_wire_ratio: 0.35,
            browser_connections: 6,
        }
    }

    /// The paper's future-work mobile experiment (§6): RCB-Agent on a Nokia
    /// N810 running Fennec, participants joining over Wi-Fi.
    pub fn mobile() -> NetProfile {
        NetProfile {
            name: "MOBILE",
            host_origin: LinkSpec {
                up_bps: 384_000,
                down_bps: 2_000_000,
                latency: ms(80),
            },
            participant_origin: LinkSpec::symmetric(10_000_000, ms(50)),
            host_participant: LinkSpec::symmetric(6_000_000, ms(2)),
            origin_think_base: ms(1000),
            origin_think_per_kb: ms(12),
            object_think: ms(30),
            first_request_overhead: ms(600),
            html_wire_ratio: 0.6,
            text_asset_wire_ratio: 0.35,
            browser_connections: 4,
        }
    }

    /// Near-zero-cost loopback for tests that only exercise protocol logic.
    pub fn loopback() -> NetProfile {
        NetProfile {
            name: "LOOPBACK",
            host_origin: LinkSpec::symmetric(10_000_000_000, SimDuration::from_micros(10)),
            participant_origin: LinkSpec::symmetric(10_000_000_000, SimDuration::from_micros(10)),
            host_participant: LinkSpec::symmetric(10_000_000_000, SimDuration::from_micros(10)),
            origin_think_base: SimDuration::ZERO,
            origin_think_per_kb: SimDuration::ZERO,
            object_think: SimDuration::ZERO,
            first_request_overhead: SimDuration::ZERO,
            html_wire_ratio: 1.0,
            text_asset_wire_ratio: 1.0,
            browser_connections: 6,
        }
    }

    /// Think time for serving an HTML document of `body_len` bytes.
    pub fn html_think(&self, body_len: usize) -> SimDuration {
        self.origin_think_base
            + SimDuration::from_micros(
                self.origin_think_per_kb.as_micros() * (body_len as u64 / 1024),
            )
    }

    /// The participant↔host path as a world-sim [`LinkModel`], with the
    /// stochastic knobs matched to the environment: a campus LAN is
    /// jitter-free, the home WAN sees moderate jitter, and the mobile
    /// profile adds Wi-Fi-shaped jitter plus a small per-segment loss
    /// rate. This is how the §5.1.2 latency/loss distributions reach the
    /// seeded fabric the real stack runs over.
    pub fn participant_link(&self) -> LinkModel {
        let base = LinkModel::from_spec(self.host_participant);
        match self.name {
            "WAN" => base.with_jitter(ms(5)),
            "MOBILE" => base.with_jitter(ms(10)).with_loss(0.01, ms(150)),
            _ => base,
        }
    }

    /// Bytes charged on the wire for a response body of `body_len` with
    /// the given content type (compression model).
    pub fn wire_bytes(&self, content_type: &str, body_len: usize) -> usize {
        let ratio = if content_type.starts_with("text/html") {
            self.html_wire_ratio
        } else if content_type.starts_with("text/css") || content_type.contains("javascript") {
            self.text_asset_wire_ratio
        } else {
            1.0 // images and XML travel as-is
        };
        ((body_len as f64) * ratio).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::request_response;
    use crate::link::Pipe;
    use rcb_util::SimTime;

    #[test]
    fn lan_sync_is_much_faster_than_origin_load() {
        // The structural claim behind Figure 6: pushing a document over the
        // LAN beats fetching it from the Internet.
        let p = NetProfile::lan();
        let doc = 100 * 1024; // 100 KB document
        let mut origin = Pipe::new(p.host_origin);
        let m1 = request_response(
            &mut origin,
            SimTime::ZERO,
            500,
            p.wire_bytes("text/html", doc),
            p.html_think(doc),
        )
        .completed_at;
        let mut rcb = Pipe::new(p.host_participant);
        let m2 =
            request_response(&mut rcb, SimTime::ZERO, 500, doc, SimDuration::ZERO).completed_at;
        assert!(m2.as_millis() * 5 < m1.as_millis(), "m2={m2} m1={m1}");
    }

    #[test]
    fn wan_host_uplink_is_the_bottleneck() {
        let p = NetProfile::wan();
        assert_eq!(p.host_participant.down_bps, 384_000);
        assert_eq!(p.host_origin.up_bps, 384_000);
        assert!(p.host_origin.down_bps > p.host_participant.down_bps);
    }

    #[test]
    fn think_scales_with_document_size() {
        let p = NetProfile::lan();
        assert!(p.html_think(228 * 1024) > p.html_think(7 * 1024));
        assert_eq!(
            p.html_think(0),
            p.origin_think_base,
            "zero-size pages pay only the base"
        );
    }

    #[test]
    fn wire_bytes_models_compression() {
        let p = NetProfile::lan();
        assert!(p.wire_bytes("text/html", 1000) < 1000);
        assert!(p.wire_bytes("text/css", 1000) < p.wire_bytes("text/html", 1000));
        assert_eq!(p.wire_bytes("image/png", 1000), 1000);
        assert_eq!(p.wire_bytes("application/xml", 1000), 1000);
        let lb = NetProfile::loopback();
        assert_eq!(lb.wire_bytes("text/html", 1000), 1000);
    }

    #[test]
    fn participant_links_reflect_environment() {
        assert_eq!(NetProfile::lan().participant_link().loss, 0.0);
        assert_eq!(
            NetProfile::lan().participant_link().jitter,
            SimDuration::ZERO
        );
        let wan = NetProfile::wan().participant_link();
        assert_eq!(wan.spec, NetProfile::wan().host_participant);
        assert!(wan.jitter > SimDuration::ZERO);
        let mobile = NetProfile::mobile().participant_link();
        assert!(mobile.loss > 0.0 && mobile.jitter > wan.jitter);
    }

    #[test]
    fn profiles_have_distinct_names() {
        let names = [
            NetProfile::lan().name,
            NetProfile::wan().name,
            NetProfile::mobile().name,
            NetProfile::loopback().name,
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
