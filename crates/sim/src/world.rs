//! The deterministic world: a seeded in-process network fabric.
//!
//! [`SimNet`] is a transport the real HTTP stack can run over with zero
//! sockets: named hosts bind [`SimListener`]s, clients open [`SimConn`]
//! byte streams whose delivery times come from a [`LinkModel`] (FIFO
//! serialization + latency, plus seeded jitter/loss draws from a
//! [`DetRng`] forked per connection), and a partition set can cut and
//! heal host pairs mid-session. [`World`] wraps a `SimNet` around a
//! shared [`VirtualClock`] and a scenario-level RNG — the turmoil-style
//! harness (SNIPPETS.md 1–3) the `rcb-core` world sim drives.
//!
//! Two usage modes:
//!
//! * **pump mode** (deterministic): everything on one thread under a
//!   virtual clock — a scenario loop alternates "pump every endpoint to
//!   quiescence" with "advance the clock to the next event"
//!   ([`SimNet::next_event_time`]). All reads are [`SimConn::try_read`];
//!   nothing blocks, nothing sleeps, and two same-seed runs replay the
//!   exact same trace.
//! * **threaded mode**: a real multi-threaded server (the workers
//!   backend) serves over `SimConn`s with a wall [`Clock`] — blocking
//!   reads wait on the fabric condvar. Not deterministic (thread
//!   scheduling), but proves the production loops run unmodified over
//!   the seam.
//!
//! TCP semantics: a conn is a **reliable in-order byte stream**. A loss
//! draw is a retransmission delay, a jitter/reorder draw perturbs a
//! segment's computed arrival, and in-order delivery is restored by
//! clamping per-direction arrivals monotone (head-of-line blocking) —
//! bytes are never dropped or permuted, exactly like TCP over a lossy
//! wire.
//!
//! Lock ordering: the fabric is one `Mutex<NetInner>` (plus the activity
//! condvar); every operation locks it alone and never calls out while
//! holding it, so it composes as a leaf under any caller lock. The
//! virtual-clock subscription only pokes the condvar.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex, Weak};

use rcb_util::{Clock, DetRng, SimDuration, SimTime, VirtualClock};

use crate::link::{LinkModel, LinkSpec};

/// Per-direction buffering cap (in-flight + delivered, bytes). A writer
/// that would exceed it gets an error — the sim equivalent of a send
/// buffer that never drains.
const DIR_CAPACITY: usize = 8 * 1024 * 1024;

/// Which end of a connection a [`SimConn`] handle is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Client,
    Server,
}

impl Side {
    /// Index of the direction this side writes into.
    fn out_dir(self) -> usize {
        match self {
            Side::Client => 0, // client → server
            Side::Server => 1, // server → client
        }
    }

    /// Index of the direction this side reads from.
    fn in_dir(self) -> usize {
        1 - self.out_dir()
    }
}

/// One direction of a connection: segments in flight (arrival-stamped)
/// plus bytes already deliverable to the reader.
#[derive(Default)]
struct DirState {
    /// FIFO serialization point (`Pipe`-style busy-until).
    busy_until: SimTime,
    /// Arrival clamp making delivery monotone (head-of-line blocking).
    last_arrival: SimTime,
    /// Segments on the wire, arrival-ordered by construction.
    in_flight: VecDeque<(SimTime, Vec<u8>)>,
    /// Bytes that have arrived and await the reader.
    delivered: VecDeque<u8>,
    /// Total buffered bytes (in_flight + delivered).
    buffered: usize,
    /// The writing side closed (EOF once the queues drain).
    closed: bool,
}

struct ConnState {
    client: String,
    server: String,
    link: LinkModel,
    rng: DetRng,
    dirs: [DirState; 2],
    reset: bool,
    /// Handle-dropped flags per [`Side::out_dir`] index.
    side_gone: [bool; 2],
}

struct ListenerState {
    /// `(ready_at, conn_id)` — connections completing their handshake.
    pending: VecDeque<(SimTime, u64)>,
    open: bool,
}

struct NetInner {
    next_conn_id: u64,
    rng: DetRng,
    listeners: BTreeMap<String, ListenerState>,
    conns: BTreeMap<u64, ConnState>,
    /// Normalized `(a, b)` host pairs currently partitioned.
    partitions: BTreeSet<(String, String)>,
    trace: Vec<String>,
    /// Loss-delay draws taken (observability for lossy-link tests).
    loss_events: u64,
}

impl NetInner {
    fn partitioned(&self, a: &str, b: &str) -> bool {
        self.partitions.contains(&normalize_pair(a, b))
    }
}

fn normalize_pair(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

/// The in-process network fabric. Shared (`Arc`) between every conn and
/// listener handle; all state lives behind one leaf mutex.
pub struct SimNet {
    clock: Clock,
    inner: Mutex<NetInner>,
    activity: Condvar,
}

impl SimNet {
    /// Creates a fabric on `clock`, with `seed` driving every per-conn
    /// jitter/loss draw. Under a virtual clock, advances poke blocked
    /// readers so clock-driven waits re-check their deadlines.
    pub fn new(clock: Clock, seed: u64) -> Arc<SimNet> {
        let net = Arc::new(SimNet {
            clock: clock.clone(),
            inner: Mutex::new(NetInner {
                next_conn_id: 0,
                rng: DetRng::new(seed),
                listeners: BTreeMap::new(),
                conns: BTreeMap::new(),
                partitions: BTreeSet::new(),
                trace: Vec::new(),
                loss_events: 0,
            }),
            activity: Condvar::new(),
        });
        // Weak: the clock outlives scenario worlds; a strong capture
        // would cycle clock → subscriber → net → clock and leak both.
        let weak: Weak<SimNet> = Arc::downgrade(&net);
        clock.on_advance(Box::new(move || {
            if let Some(net) = weak.upgrade() {
                net.activity.notify_all();
            }
        }));
        net
    }

    /// The clock this fabric runs on.
    pub fn clock(&self) -> Clock {
        self.clock.clone()
    }

    fn trace_line(inner: &mut NetInner, now: SimTime, msg: impl AsRef<str>) {
        inner
            .trace
            .push(format!("t={} {}", now.as_micros(), msg.as_ref()));
    }

    /// Appends a scenario-level line to the event trace.
    pub fn note(&self, msg: &str) {
        let now = self.clock.now();
        let mut inner = self.inner.lock().unwrap();
        Self::trace_line(&mut inner, now, msg);
    }

    /// A copy of the event trace so far.
    pub fn trace(&self) -> Vec<String> {
        self.inner.lock().unwrap().trace.clone()
    }

    /// Number of loss-delay draws charged so far.
    pub fn loss_events(&self) -> u64 {
        self.inner.lock().unwrap().loss_events
    }

    /// Binds `host` — at most one listener per name.
    pub fn bind(self: &Arc<Self>, host: &str) -> io::Result<SimListener> {
        let now = self.clock.now();
        let mut inner = self.inner.lock().unwrap();
        if inner.listeners.get(host).is_some_and(|l| l.open) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("host {host} already bound"),
            ));
        }
        inner.listeners.insert(
            host.to_string(),
            ListenerState {
                pending: VecDeque::new(),
                open: true,
            },
        );
        Self::trace_line(&mut inner, now, format!("bind {host}"));
        Ok(SimListener {
            net: self.clone(),
            host: host.to_string(),
        })
    }

    /// Opens a connection from `from` to the listener bound at `to` over
    /// `link`. The handshake costs one RTT: the returned client conn can
    /// write immediately, but nothing is delivered (and the server side
    /// is not acceptable) before `now + rtt`.
    pub fn connect(self: &Arc<Self>, from: &str, to: &str, link: LinkModel) -> io::Result<SimConn> {
        let now = self.clock.now();
        let mut inner = self.inner.lock().unwrap();
        if inner.partitioned(from, to) {
            Self::trace_line(
                &mut inner,
                now,
                format!("connect-refused {from}->{to} (partitioned)"),
            );
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("{from} -> {to} is partitioned"),
            ));
        }
        if !inner.listeners.get(to).is_some_and(|l| l.open) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("no listener at {to}"),
            ));
        }
        let id = inner.next_conn_id;
        inner.next_conn_id += 1;
        let rng = inner.rng.fork(id);
        let established = now + link.spec.rtt();
        let mut conn = ConnState {
            client: from.to_string(),
            server: to.to_string(),
            link,
            rng,
            dirs: [DirState::default(), DirState::default()],
            reset: false,
            side_gone: [false, false],
        };
        for d in &mut conn.dirs {
            d.busy_until = established;
            d.last_arrival = established;
        }
        inner.conns.insert(id, conn);
        inner
            .listeners
            .get_mut(to)
            .expect("listener checked above")
            .pending
            .push_back((established, id));
        Self::trace_line(&mut inner, now, format!("connect #{id} {from}->{to}"));
        drop(inner);
        self.activity.notify_all();
        Ok(SimConn {
            net: self.clone(),
            id,
            side: Side::Client,
            nonblocking: false,
            read_timeout: None,
        })
    }

    /// Cuts every connection between `a` and `b` (established and
    /// pending) and refuses new ones until [`SimNet::heal`].
    pub fn partition(&self, a: &str, b: &str) {
        let now = self.clock.now();
        let mut inner = self.inner.lock().unwrap();
        inner.partitions.insert(normalize_pair(a, b));
        let mut cut = Vec::new();
        for (&id, conn) in inner.conns.iter_mut() {
            if !conn.reset
                && ((conn.client == a && conn.server == b)
                    || (conn.client == b && conn.server == a))
            {
                conn.reset = true;
                cut.push(id);
            }
        }
        for id in &cut {
            Self::trace_line(&mut inner, now, format!("reset #{id}"));
        }
        Self::trace_line(&mut inner, now, format!("partition {a}|{b}"));
        drop(inner);
        self.activity.notify_all();
    }

    /// Removes the partition between `a` and `b`; new connections flow
    /// again (cut connections stay dead — endpoints must reconnect).
    pub fn heal(&self, a: &str, b: &str) {
        let now = self.clock.now();
        let mut inner = self.inner.lock().unwrap();
        inner.partitions.remove(&normalize_pair(a, b));
        Self::trace_line(&mut inner, now, format!("heal {a}|{b}"));
        drop(inner);
        self.activity.notify_all();
    }

    /// The earliest future fabric event strictly after `after`: a segment
    /// arrival or a handshake completing. Matured-but-unread data does
    /// not count (a quiescent pump has already consumed it).
    pub fn next_event_time(&self, after: SimTime) -> Option<SimTime> {
        let inner = self.inner.lock().unwrap();
        let mut best: Option<SimTime> = None;
        let mut consider = |t: SimTime| {
            if t > after && best.is_none_or(|b| t < b) {
                best = Some(t);
            }
        };
        for conn in inner.conns.values() {
            if conn.reset {
                continue;
            }
            for d in &conn.dirs {
                // Arrivals are monotone per direction: the first one
                // beyond `after` is this direction's next event (earlier
                // ones have matured and wait only on a reader).
                if let Some(&(arrival, _)) =
                    d.in_flight.iter().find(|&&(arrival, _)| arrival > after)
                {
                    consider(arrival);
                }
            }
        }
        for l in inner.listeners.values() {
            if let Some(&(ready, _)) = l.pending.iter().find(|&&(ready, _)| ready > after) {
                consider(ready);
            }
        }
        best
    }

    fn try_accept(self: &Arc<Self>, host: &str) -> io::Result<SimConn> {
        let now = self.clock.now();
        let mut inner = self.inner.lock().unwrap();
        let listener = inner.listeners.get_mut(host).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, format!("{host} not bound"))
        })?;
        match listener.pending.front() {
            Some(&(ready, _)) if ready <= now => {
                let (_, id) = listener.pending.pop_front().expect("peeked above");
                Self::trace_line(&mut inner, now, format!("accept #{id} at {host}"));
                Ok(SimConn {
                    net: self.clone(),
                    id,
                    side: Side::Server,
                    nonblocking: false,
                    read_timeout: None,
                })
            }
            _ => Err(io::ErrorKind::WouldBlock.into()),
        }
    }

    fn write(&self, id: u64, side: Side, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let now = self.clock.now();
        let mut guard = self.inner.lock().unwrap();
        let inner = &mut *guard;
        let conn = inner
            .conns
            .get_mut(&id)
            .ok_or_else(|| io::Error::from(io::ErrorKind::ConnectionReset))?;
        if conn.reset {
            return Err(io::ErrorKind::ConnectionReset.into());
        }
        let dir_idx = side.out_dir();
        let (bps, latency) = match side {
            Side::Client => (conn.link.spec.up_bps, conn.link.spec.latency),
            Side::Server => (conn.link.spec.down_bps, conn.link.spec.latency),
        };
        let d = &mut conn.dirs[dir_idx];
        if d.buffered + buf.len() > DIR_CAPACITY {
            return Err(io::Error::new(
                io::ErrorKind::OutOfMemory,
                "sim conn buffer full (reader not draining)",
            ));
        }
        // FIFO serialization, then latency, then the seeded perturbations.
        let begin = now.max(d.busy_until);
        d.busy_until = begin + LinkSpec::serialization(buf.len(), bps);
        let mut arrival = d.busy_until + latency;
        if conn.link.jitter > SimDuration::ZERO {
            arrival +=
                SimDuration::from_micros(conn.rng.next_below(conn.link.jitter.as_micros() + 1));
        }
        if conn.link.loss > 0.0 && conn.rng.chance(conn.link.loss) {
            arrival += conn.link.loss_penalty;
            inner.loss_events += 1;
        }
        // Head-of-line blocking: a TCP stream delivers in order.
        arrival = arrival.max(d.last_arrival);
        d.last_arrival = arrival;
        d.in_flight.push_back((arrival, buf.to_vec()));
        d.buffered += buf.len();
        SimNet::trace_line(
            inner,
            now,
            format!(
                "xfer #{id} dir{dir_idx} {}B arr={}",
                buf.len(),
                arrival.as_micros()
            ),
        );
        drop(guard);
        self.activity.notify_all();
        Ok(buf.len())
    }

    /// Moves matured segments into the reader-visible queue.
    fn mature(d: &mut DirState, now: SimTime) {
        while let Some(&(arrival, _)) = d.in_flight.front() {
            if arrival > now {
                break;
            }
            let (_, bytes) = d.in_flight.pop_front().expect("peeked above");
            d.delivered.extend(bytes);
        }
    }

    /// One nonblocking read attempt. `Ok(0)` is EOF (peer closed and the
    /// stream is drained); `WouldBlock` means nothing deliverable *yet*.
    fn try_read(&self, id: u64, side: Side, buf: &mut [u8]) -> io::Result<usize> {
        let now = self.clock.now();
        let mut inner = self.inner.lock().unwrap();
        let conn = inner
            .conns
            .get_mut(&id)
            .ok_or_else(|| io::Error::from(io::ErrorKind::ConnectionReset))?;
        let d = &mut conn.dirs[side.in_dir()];
        Self::mature(d, now);
        if !d.delivered.is_empty() {
            let n = buf.len().min(d.delivered.len());
            for b in buf.iter_mut().take(n) {
                *b = d.delivered.pop_front().expect("len checked");
            }
            d.buffered -= n;
            return Ok(n);
        }
        if conn.reset {
            return Err(io::ErrorKind::ConnectionReset.into());
        }
        if d.closed && d.in_flight.is_empty() {
            return Ok(0); // clean EOF
        }
        Err(io::ErrorKind::WouldBlock.into())
    }

    /// Blocking read for threaded mode: parks on the activity condvar
    /// until data, EOF, reset, or `timeout` (measured on the fabric
    /// clock, so virtual time drives virtual waits).
    fn read_blocking(
        &self,
        id: u64,
        side: Side,
        buf: &mut [u8],
        timeout: Option<SimDuration>,
    ) -> io::Result<usize> {
        let deadline = timeout.map(|t| self.clock.now() + t);
        loop {
            match self.try_read(id, side, buf) {
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                other => return other,
            }
            if deadline.is_some_and(|d| self.clock.now() >= d) {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            // Re-check at the next fabric event, wall slice, or wake.
            let guard = self.inner.lock().unwrap();
            let _unused = self
                .activity
                .wait_timeout(guard, std::time::Duration::from_millis(10))
                .unwrap();
        }
    }

    fn close_side(&self, id: u64, side: Side) {
        let mut inner = self.inner.lock().unwrap();
        let remove = if let Some(conn) = inner.conns.get_mut(&id) {
            conn.dirs[side.out_dir()].closed = true;
            conn.side_gone[side.out_dir()] = true;
            conn.side_gone == [true, true]
        } else {
            false
        };
        if remove {
            inner.conns.remove(&id);
        }
        drop(inner);
        self.activity.notify_all();
    }
}

/// A bound host accepting simulated connections.
pub struct SimListener {
    net: Arc<SimNet>,
    host: String,
}

impl SimListener {
    /// The host name this listener is bound to.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The fabric this listener lives on.
    pub fn net(&self) -> Arc<SimNet> {
        self.net.clone()
    }

    /// Accepts one handshake-complete connection, or `WouldBlock`.
    pub fn try_accept(&self) -> io::Result<SimConn> {
        self.net.try_accept(&self.host)
    }
}

impl Drop for SimListener {
    fn drop(&mut self) {
        let mut inner = self.net.inner.lock().unwrap();
        if let Some(l) = inner.listeners.get_mut(&self.host) {
            l.open = false;
        }
    }
}

impl std::fmt::Debug for SimListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimListener({})", self.host)
    }
}

/// One end of a simulated TCP connection. Implements blocking
/// `Read`/`Write` (for the threaded server path) plus [`SimConn::try_read`]
/// for the nonblocking pump mode; dropping the handle closes this side.
pub struct SimConn {
    net: Arc<SimNet>,
    id: u64,
    side: Side,
    nonblocking: bool,
    read_timeout: Option<SimDuration>,
}

impl SimConn {
    /// Fabric-wide connection id (stable across both ends).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Nonblocking read: `Ok(0)` = EOF, `WouldBlock` = nothing yet.
    pub fn try_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.net.try_read(self.id, self.side, buf)
    }

    /// Mirrors `TcpStream::set_read_timeout` for the transport seam.
    pub fn set_read_timeout(&mut self, timeout: Option<SimDuration>) {
        self.read_timeout = timeout;
    }

    /// Makes blocking `Read` calls return `WouldBlock` instead.
    pub fn set_nonblocking(&mut self, nonblocking: bool) {
        self.nonblocking = nonblocking;
    }

    /// Time of the next deliverable byte on this conn's read direction,
    /// if any segment is still in flight.
    pub fn next_arrival(&self) -> Option<SimTime> {
        let inner = self.net.inner.lock().unwrap();
        let conn = inner.conns.get(&self.id)?;
        conn.dirs[self.side.in_dir()]
            .in_flight
            .front()
            .map(|&(arrival, _)| arrival)
    }
}

impl Read for SimConn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.nonblocking {
            self.try_read(buf)
        } else {
            self.net
                .read_blocking(self.id, self.side, buf, self.read_timeout)
        }
    }
}

impl Write for SimConn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.net.write(self.id, self.side, buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for SimConn {
    fn drop(&mut self) {
        self.net.close_side(self.id, self.side);
    }
}

impl std::fmt::Debug for SimConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimConn(#{} {:?})", self.id, self.side)
    }
}

/// A seeded world: virtual clock + fabric + scenario RNG. The entry
/// point for deterministic (pump-mode) simulations.
pub struct World {
    clock: Clock,
    vclock: Arc<VirtualClock>,
    net: Arc<SimNet>,
    rng: DetRng,
}

impl World {
    /// Creates a world at `t = 0` whose every random draw derives from
    /// `seed`.
    pub fn new(seed: u64) -> World {
        let (clock, vclock) = Clock::new_virtual();
        let net = SimNet::new(clock.clone(), seed);
        World {
            clock,
            vclock,
            net,
            rng: DetRng::new(seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// A clock handle server/agent code should consult.
    pub fn clock(&self) -> Clock {
        self.clock.clone()
    }

    /// The fabric (for direct `bind`/`connect`/trace access).
    pub fn net(&self) -> Arc<SimNet> {
        self.net.clone()
    }

    /// The scenario-level RNG (deterministic, forked from the seed).
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Advances virtual time to `t` (monotonic).
    pub fn advance_to(&self, t: SimTime) {
        self.vclock.advance_to(t);
    }

    /// Advances virtual time by `d`.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        self.vclock.advance(d)
    }

    /// Binds a named host.
    pub fn bind(&self, host: &str) -> io::Result<SimListener> {
        self.net.bind(host)
    }

    /// Connects `from` to `to` over `link`.
    pub fn connect(&self, from: &str, to: &str, link: LinkModel) -> io::Result<SimConn> {
        self.net.connect(from, to, link)
    }

    /// Cuts `a` ↔ `b`.
    pub fn partition(&self, a: &str, b: &str) {
        self.net.partition(a, b);
    }

    /// Heals `a` ↔ `b`.
    pub fn heal(&self, a: &str, b: &str) {
        self.net.heal(a, b);
    }

    /// Earliest fabric event strictly after now.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.net.next_event_time(self.now())
    }

    /// Appends a scenario-level trace line.
    pub fn note(&self, msg: &str) {
        self.net.note(msg);
    }

    /// A copy of the event trace.
    pub fn trace(&self) -> Vec<String> {
        self.net.trace()
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "World(now={})", self.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_link() -> LinkModel {
        LinkModel::from_spec(LinkSpec::symmetric(
            100_000_000,
            SimDuration::from_millis(1),
        ))
    }

    /// Pump-mode helper: advance to the next fabric event.
    fn step(world: &World) -> bool {
        match world.next_event_time() {
            Some(t) => {
                world.advance_to(t);
                true
            }
            None => false,
        }
    }

    #[test]
    fn bytes_flow_client_to_server_after_latency() {
        let world = World::new(1);
        let listener = world.bind("host").unwrap();
        let mut client = world.connect("p1", "host", fast_link()).unwrap();
        // Handshake not complete: nothing to accept at t=0.
        assert_eq!(
            listener.try_accept().unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        client.write_all(b"hello").unwrap();
        assert!(step(&world), "handshake completion is an event");
        let mut server = listener.try_accept().unwrap();
        let mut buf = [0u8; 16];
        // Data may need a further advance (serialization + latency).
        let n = loop {
            match server.try_read(&mut buf) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => assert!(step(&world)),
                Err(e) => panic!("unexpected {e}"),
            }
        };
        assert_eq!(&buf[..n], b"hello");
        // And the reply direction works symmetrically.
        server.write_all(b"world").unwrap();
        let n = loop {
            match client.try_read(&mut buf) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => assert!(step(&world)),
                Err(e) => panic!("unexpected {e}"),
            }
        };
        assert_eq!(&buf[..n], b"world");
    }

    #[test]
    fn dropping_writer_is_clean_eof() {
        let world = World::new(2);
        let listener = world.bind("host").unwrap();
        let mut client = world.connect("p1", "host", fast_link()).unwrap();
        client.write_all(b"bye").unwrap();
        drop(client);
        while step(&world) {}
        let mut server = listener.try_accept().unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(server.try_read(&mut buf).unwrap(), 3);
        assert_eq!(server.try_read(&mut buf).unwrap(), 0, "EOF after drain");
    }

    #[test]
    fn partition_resets_conns_and_refuses_new_ones_until_heal() {
        let world = World::new(3);
        let _listener = world.bind("host").unwrap();
        let mut client = world.connect("p1", "host", fast_link()).unwrap();
        world.partition("p1", "host");
        assert_eq!(
            client.write(b"x").unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        let mut buf = [0u8; 4];
        assert_eq!(
            client.try_read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert_eq!(
            world.connect("p1", "host", fast_link()).unwrap_err().kind(),
            io::ErrorKind::ConnectionRefused
        );
        // Unrelated hosts are unaffected.
        assert!(world.connect("p2", "host", fast_link()).is_ok());
        world.heal("p1", "host");
        assert!(world.connect("p1", "host", fast_link()).is_ok());
    }

    #[test]
    fn ordering_survives_jitter_and_loss() {
        // A very jittery, lossy link must still deliver a TCP stream:
        // same bytes, same order, no duplication.
        let world = World::new(4);
        let listener = world.bind("host").unwrap();
        let link = fast_link()
            .with_jitter(SimDuration::from_millis(50))
            .with_loss(0.3, SimDuration::from_millis(80));
        let mut client = world.connect("p1", "host", link).unwrap();
        let mut sent = Vec::new();
        for i in 0..50u8 {
            let seg = vec![i; 7];
            client.write_all(&seg).unwrap();
            sent.extend(seg);
        }
        while step(&world) {}
        let mut server = listener.try_accept().unwrap();
        let mut got: Vec<u8> = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match server.try_read(&mut buf) {
                Ok(n) => got.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(got, sent);
        assert!(world.net().loss_events() > 0, "loss draws actually fired");
    }

    #[test]
    fn same_seed_same_trace_different_seed_differs() {
        let run = |seed: u64| -> Vec<String> {
            let world = World::new(seed);
            let listener = world.bind("host").unwrap();
            let link = fast_link().with_jitter(SimDuration::from_millis(10));
            let mut c1 = world.connect("p1", "host", link).unwrap();
            let mut c2 = world.connect("p2", "host", link).unwrap();
            c1.write_all(b"aaaa").unwrap();
            c2.write_all(b"bbbb").unwrap();
            while step(&world) {}
            let _s1 = listener.try_accept().unwrap();
            let _s2 = listener.try_accept().unwrap();
            world.trace()
        };
        assert_eq!(run(7), run(7), "same seed replays byte-identically");
        assert_ne!(run(7), run(8), "jitter draws depend on the seed");
    }

    #[test]
    fn blocking_read_honors_wall_clock_timeout() {
        // Threaded mode: a wall-clock fabric with a read timeout.
        let net = SimNet::new(Clock::wall(), 5);
        let _listener = net.bind("host").unwrap();
        let mut client = net.connect("p1", "host", fast_link()).unwrap();
        client.set_read_timeout(Some(SimDuration::from_millis(30)));
        let mut buf = [0u8; 4];
        let start = std::time::Instant::now();
        assert_eq!(
            client.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::WouldBlock
        );
        assert!(start.elapsed() >= std::time::Duration::from_millis(25));
    }

    #[test]
    fn capacity_overflow_errors_instead_of_blocking() {
        let world = World::new(6);
        let _listener = world.bind("host").unwrap();
        let mut client = world.connect("p1", "host", fast_link()).unwrap();
        let chunk = vec![0u8; 1024 * 1024];
        let mut wrote = 0usize;
        let err = loop {
            match client.write(&chunk) {
                Ok(n) => wrote += n,
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::OutOfMemory);
        assert_eq!(wrote, DIR_CAPACITY);
    }
}
