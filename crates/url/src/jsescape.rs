//! The JavaScript `escape`/`unescape` pair.
//!
//! The paper's XML response format (§4.1.2, Fig. 4) encodes every innerHTML
//! value and attribute list "using the JavaScript escape function" before
//! wrapping it in a CDATA section, and Ajax-Snippet reverses it with
//! `unescape`. The functions here replicate the exact legacy semantics:
//!
//! * ASCII letters, digits and `@ * _ + - . /` pass through;
//! * other code units below 0x100 become `%XX`;
//! * code units at or above 0x100 become `%uXXXX` (UTF-16 code units, so
//!   supplementary-plane characters produce surrogate pairs, exactly as
//!   browsers do).

/// Characters the legacy `escape` passes through unchanged.
fn is_passthrough(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '@' | '*' | '_' | '+' | '-' | '.' | '/')
}

/// JavaScript's legacy `escape` function.
pub fn escape(input: &str) -> String {
    let mut out = String::with_capacity(input.len() + input.len() / 4);
    escape_into(input, &mut out);
    out
}

/// [`escape`], appended to an existing buffer.
///
/// Escaping is character-wise, so `escape(a) + escape(b) == escape(a + b)`:
/// streaming writers (the Fig.-4 XML assembler) escape each fragment of a
/// payload straight into one output buffer instead of building
/// per-fragment intermediate strings.
pub fn escape_into(input: &str, out: &mut String) {
    const HEX: &[u8; 16] = b"0123456789ABCDEF";
    out.reserve(input.len() + input.len() / 4);
    for c in input.chars() {
        if is_passthrough(c) {
            out.push(c);
        } else {
            let mut units = [0u16; 2];
            for unit in c.encode_utf16(&mut units) {
                let u = *unit;
                if u < 0x100 {
                    out.push('%');
                    out.push(HEX[(u >> 4) as usize] as char);
                    out.push(HEX[(u & 0xF) as usize] as char);
                } else {
                    out.push_str("%u");
                    out.push(HEX[(u >> 12) as usize] as char);
                    out.push(HEX[((u >> 8) & 0xF) as usize] as char);
                    out.push(HEX[((u >> 4) & 0xF) as usize] as char);
                    out.push(HEX[(u & 0xF) as usize] as char);
                }
            }
        }
    }
}

/// JavaScript's legacy `unescape` function.
///
/// Malformed escapes pass through verbatim, matching browser behaviour.
/// Surrogate pairs produced by [`escape`] are re-combined; unpaired
/// surrogates become U+FFFD.
pub fn unescape(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut units: Vec<u16> = Vec::with_capacity(input.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            // %uXXXX form.
            if bytes.get(i + 1) == Some(&b'u') && i + 5 < bytes.len() {
                if let Ok(v) =
                    u16::from_str_radix(std::str::from_utf8(&bytes[i + 2..i + 6]).unwrap_or(""), 16)
                {
                    units.push(v);
                    i += 6;
                    continue;
                }
            }
            // %XX form.
            if i + 2 < bytes.len() + 1 {
                if let (Some(h), Some(l)) = (
                    bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                    bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
                ) {
                    units.push((h * 16 + l) as u16);
                    i += 3;
                    continue;
                }
            }
        }
        // Pass-through: push the char's UTF-16 units. `i` always sits on
        // a char boundary (we only ever step past complete chars or ASCII
        // escape sequences), so the O(1) str slice is safe to take — no
        // per-character UTF-8 revalidation.
        if let Some(c) = input.get(i..).and_then(|s| s.chars().next()) {
            let mut buf = [0u16; 2];
            units.extend_from_slice(c.encode_utf16(&mut buf));
            i += c.len_utf8();
        } else {
            // Defensive: off-boundary index (cannot happen); stop cleanly.
            units.push(0xFFFD);
            break;
        }
    }
    String::from_utf16_lossy(&units)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_passthrough() {
        assert_eq!(escape("Az09@*_+-./"), "Az09@*_+-./");
    }

    #[test]
    fn latin1_uses_two_digit_form() {
        assert_eq!(escape(" "), "%20");
        assert_eq!(escape("<div>"), "%3Cdiv%3E");
        assert_eq!(escape("é"), "%E9");
    }

    #[test]
    fn bmp_uses_u_form() {
        assert_eq!(escape("中"), "%u4E2D");
    }

    #[test]
    fn supplementary_plane_is_surrogate_pair() {
        // U+1F600 GRINNING FACE → D83D DE00 surrogates.
        assert_eq!(escape("😀"), "%uD83D%uDE00");
        assert_eq!(unescape("%uD83D%uDE00"), "😀");
    }

    #[test]
    fn roundtrip_html_fragment() {
        let html = r#"<a href="http://example.com/?q=1&r=2" onclick="go('x')">café 地图</a>"#;
        assert_eq!(unescape(&escape(html)), html);
    }

    #[test]
    fn unescape_tolerates_malformed() {
        assert_eq!(unescape("100%"), "100%");
        assert_eq!(unescape("%zz"), "%zz");
        assert_eq!(unescape("%u12"), "%u12");
    }

    #[test]
    fn unescape_plain_text() {
        assert_eq!(unescape("hello world"), "hello world");
    }

    #[test]
    fn escape_into_appends_and_concatenates() {
        let mut out = String::from("prefix:");
        escape_into("<a b>", &mut out);
        assert_eq!(out, "prefix:%3Ca%20b%3E");
        // Character-wise escaping is concatenation-preserving.
        let (a, b) = ("café <", "中 &😀");
        let mut streamed = String::new();
        escape_into(a, &mut streamed);
        escape_into(b, &mut streamed);
        assert_eq!(streamed, escape(&format!("{a}{b}")));
    }
}
