//! URL substrate for the RCB reproduction.
//!
//! RCB-Agent's response-content generation (paper §4.1.2, Fig. 3) depends on
//! two URL transformations over the cloned document:
//!
//! 1. relative → absolute URL conversion so the *non-cache mode* lets a
//!    participant browser fetch supplementary objects from origin servers;
//! 2. absolute → agent-URL conversion in *cache mode* so objects are fetched
//!    from the host browser's cache instead.
//!
//! Both need a real resolver, which this crate provides: an RFC-3986-subset
//! parser ([`Url`]), reference resolution ([`Url::join`]), percent-encoding
//! ([`percent`]), and the JavaScript `escape`/`unescape` pair ([`jsescape`])
//! that the paper uses to armor innerHTML payloads inside XML CDATA
//! sections (§4.1.2, Fig. 4).

pub mod jsescape;
pub mod percent;
pub mod url;

pub use url::Url;
