//! Percent-encoding (RFC 3986 subset).
//!
//! Used when the agent embeds request parameters (HMAC values, cache tokens,
//! piggybacked action payloads) into request-URIs.

/// Returns true for characters RFC 3986 leaves unreserved.
fn is_unreserved(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b'~')
}

/// Percent-encodes everything except unreserved characters.
pub fn encode(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for &b in input.as_bytes() {
        if is_unreserved(b) {
            out.push(b as char);
        } else {
            out.push('%');
            out.push_str(&format!("{b:02X}"));
        }
    }
    out
}

/// Percent-encodes a path component, additionally passing `/` through.
pub fn encode_path(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for &b in input.as_bytes() {
        if is_unreserved(b) || b == b'/' {
            out.push(b as char);
        } else {
            out.push('%');
            out.push_str(&format!("{b:02X}"));
        }
    }
    out
}

/// Decodes percent-escapes; malformed escapes are passed through verbatim
/// (browser-like tolerance). `+` is *not* treated as a space; callers doing
/// form decoding handle that themselves.
pub fn decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if let (Some(h), Some(l)) = (
                bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
            ) {
                out.push((h * 16 + l) as u8);
                i += 3;
                continue;
            }
            out.push(b'%');
            i += 1;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Decodes `application/x-www-form-urlencoded` content (`+` becomes space).
pub fn decode_form(input: &str) -> String {
    decode(&input.replace('+', " "))
}

/// Encodes a string for use as a form value (`space` becomes `+`).
pub fn encode_form(input: &str) -> String {
    encode(input).replace("%20", "+")
}

/// Splits a query string (`a=1&b=2`) into decoded key/value pairs.
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (decode_form(k), decode_form(v)),
            None => (decode_form(pair), String::new()),
        })
        .collect()
}

/// Joins key/value pairs into an encoded query string.
pub fn build_query(pairs: &[(String, String)]) -> String {
    pairs
        .iter()
        .map(|(k, v)| format!("{}={}", encode_form(k), encode_form(v)))
        .collect::<Vec<_>>()
        .join("&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_roundtrip() {
        let s = "a b/c?d=e&f#g%";
        assert_eq!(decode(&encode(s)), s);
    }

    #[test]
    fn encode_leaves_unreserved() {
        assert_eq!(encode("AZaz09-_.~"), "AZaz09-_.~");
    }

    #[test]
    fn encode_path_keeps_slashes() {
        assert_eq!(encode_path("/a b/c"), "/a%20b/c");
    }

    #[test]
    fn decode_tolerates_malformed() {
        assert_eq!(decode("100%"), "100%");
        assert_eq!(decode("%zz"), "%zz");
        assert_eq!(decode("%4"), "%4");
    }

    #[test]
    fn form_coding() {
        assert_eq!(encode_form("a b"), "a+b");
        assert_eq!(decode_form("a+b%21"), "a b!");
    }

    #[test]
    fn query_roundtrip() {
        let pairs = vec![
            ("q".to_string(), "macbook air".to_string()),
            ("page".to_string(), "2".to_string()),
        ];
        let q = build_query(&pairs);
        assert_eq!(q, "q=macbook+air&page=2");
        assert_eq!(parse_query(&q), pairs);
    }

    #[test]
    fn query_without_value() {
        assert_eq!(
            parse_query("flag&x=1"),
            vec![
                ("flag".to_string(), String::new()),
                ("x".to_string(), "1".to_string())
            ]
        );
    }

    #[test]
    fn decode_utf8_sequences() {
        assert_eq!(decode("%C3%A9"), "é");
    }
}
