//! URL parsing and reference resolution (RFC 3986 subset).
//!
//! Supports the `http`/`https` scheme family the paper targets ("Web
//! contents hosted on HTTP or HTTPS Web servers can all be synchronized",
//! §1), plus everything reference resolution requires: absolute URLs,
//! scheme-relative (`//host/x`), absolute-path, relative-path, query-only
//! and fragment-only references, and `.`/`..` segment normalization.

use std::fmt;

use rcb_util::{RcbError, Result};

/// A parsed absolute URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Url {
    /// Lower-cased scheme (`http` or `https`).
    pub scheme: String,
    /// Lower-cased host (name or IP literal).
    pub host: String,
    /// Explicit port if present.
    pub port: Option<u16>,
    /// Absolute path, always beginning with `/`.
    pub path: String,
    /// Query string without the leading `?`, if present.
    pub query: Option<String>,
    /// Fragment without the leading `#`, if present.
    pub fragment: Option<String>,
}

impl Url {
    /// Parses an absolute `http`/`https` URL.
    pub fn parse(input: &str) -> Result<Url> {
        let input = input.trim();
        let (scheme, rest) = input
            .split_once("://")
            .ok_or_else(|| RcbError::parse("url", format!("missing scheme: {input:?}")))?;
        let scheme = scheme.to_ascii_lowercase();
        if scheme != "http" && scheme != "https" {
            return Err(RcbError::parse(
                "url",
                format!("unsupported scheme {scheme:?}"),
            ));
        }
        // Split off fragment, then query, then path.
        let (rest, fragment) = match rest.split_once('#') {
            Some((r, f)) => (r, Some(f.to_string())),
            None => (rest, None),
        };
        let (rest, query) = match rest.split_once('?') {
            Some((r, q)) => (r, Some(q.to_string())),
            None => (rest, None),
        };
        let (authority, path) = match rest.find('/') {
            Some(idx) => (&rest[..idx], rest[idx..].to_string()),
            None => (rest, "/".to_string()),
        };
        if authority.is_empty() {
            return Err(RcbError::parse("url", "empty authority"));
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) if p.chars().all(|c| c.is_ascii_digit()) && !p.is_empty() => {
                let port: u16 = p
                    .parse()
                    .map_err(|_| RcbError::parse("url", format!("bad port {p:?}")))?;
                (h, Some(port))
            }
            _ => (authority, None),
        };
        if host.is_empty() {
            return Err(RcbError::parse("url", "empty host"));
        }
        Ok(Url {
            scheme,
            host: host.to_ascii_lowercase(),
            port,
            path: normalize_path(&path),
            query,
            fragment,
        })
    }

    /// Returns true if `input` looks like an absolute URL (has a scheme).
    pub fn is_absolute(input: &str) -> bool {
        input.contains("://")
    }

    /// The effective port (explicit, or the scheme default).
    pub fn effective_port(&self) -> u16 {
        self.port.unwrap_or(match self.scheme.as_str() {
            "https" => 443,
            _ => 80,
        })
    }

    /// `scheme://host[:port]` — the origin, used as the key for simulated
    /// origin servers and for cache partitioning.
    pub fn origin(&self) -> String {
        match self.port {
            Some(p) => format!("{}://{}:{}", self.scheme, self.host, p),
            None => format!("{}://{}", self.scheme, self.host),
        }
    }

    /// Path plus query — the HTTP request-target for this URL.
    pub fn request_target(&self) -> String {
        match &self.query {
            Some(q) => format!("{}?{}", self.path, q),
            None => self.path.clone(),
        }
    }

    /// Resolves a reference against `self` per RFC 3986 §5 (subset).
    ///
    /// This is the primitive behind the agent's relative→absolute rewriting
    /// step (Fig. 3, step 2).
    pub fn join(&self, reference: &str) -> Result<Url> {
        let reference = reference.trim();
        if reference.is_empty() {
            return Ok(self.clone());
        }
        if Url::is_absolute(reference) {
            return Url::parse(reference);
        }
        // Scheme-relative: //host/path
        if let Some(rest) = reference.strip_prefix("//") {
            return Url::parse(&format!("{}://{}", self.scheme, rest));
        }
        let mut out = self.clone();
        out.fragment = None;
        // Fragment-only.
        if let Some(frag) = reference.strip_prefix('#') {
            out.query = self.query.clone();
            out.fragment = Some(frag.to_string());
            return Ok(out);
        }
        // Query-only.
        if let Some(q) = reference.strip_prefix('?') {
            let (q, frag) = split_fragment(q);
            out.query = Some(q.to_string());
            out.fragment = frag;
            return Ok(out);
        }
        let (refpath, query, fragment) = split_path_query_fragment(reference);
        out.query = query;
        out.fragment = fragment;
        if refpath.starts_with('/') {
            out.path = normalize_path(refpath);
        } else {
            // Merge with the base path's directory.
            let base_dir = match self.path.rfind('/') {
                Some(idx) => &self.path[..=idx],
                None => "/",
            };
            out.path = normalize_path(&format!("{base_dir}{refpath}"));
        }
        Ok(out)
    }
}

fn split_fragment(s: &str) -> (&str, Option<String>) {
    match s.split_once('#') {
        Some((a, f)) => (a, Some(f.to_string())),
        None => (s, None),
    }
}

fn split_path_query_fragment(s: &str) -> (&str, Option<String>, Option<String>) {
    let (rest, fragment) = split_fragment(s);
    match rest.split_once('?') {
        Some((p, q)) => (p, Some(q.to_string()), fragment),
        None => (rest, None, fragment),
    }
}

/// Removes `.` and `..` segments (RFC 3986 §5.2.4) and guarantees a leading
/// slash.
fn normalize_path(path: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    let trailing_slash = path.ends_with('/') || path.ends_with("/.") || path.ends_with("/..");
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            s => out.push(s),
        }
    }
    let mut norm = String::from("/");
    norm.push_str(&out.join("/"));
    if trailing_slash && norm.len() > 1 {
        norm.push('/');
    }
    norm
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.origin(), self.path)?;
        if let Some(q) = &self.query {
            write!(f, "?{q}")?;
        }
        if let Some(frag) = &self.fragment {
            write!(f, "#{frag}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let u = Url::parse("http://www.example.com/a/b?x=1#top").unwrap();
        assert_eq!(u.scheme, "http");
        assert_eq!(u.host, "www.example.com");
        assert_eq!(u.port, None);
        assert_eq!(u.path, "/a/b");
        assert_eq!(u.query.as_deref(), Some("x=1"));
        assert_eq!(u.fragment.as_deref(), Some("top"));
        assert_eq!(u.effective_port(), 80);
    }

    #[test]
    fn parse_with_port_and_https() {
        let u = Url::parse("https://host:3000").unwrap();
        assert_eq!(u.port, Some(3000));
        assert_eq!(u.path, "/");
        assert_eq!(u.origin(), "https://host:3000");
        assert_eq!(Url::parse("https://host/").unwrap().effective_port(), 443);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Url::parse("not a url").is_err());
        assert!(Url::parse("ftp://host/x").is_err());
        assert!(Url::parse("http://").is_err());
        assert!(Url::parse("http://:80/").is_err());
    }

    #[test]
    fn host_and_scheme_lowercased() {
        let u = Url::parse("HTTP://WWW.Example.COM/Path").unwrap();
        assert_eq!(u.scheme, "http");
        assert_eq!(u.host, "www.example.com");
        assert_eq!(u.path, "/Path");
    }

    #[test]
    fn join_relative_path() {
        let base = Url::parse("http://h/a/b/c.html").unwrap();
        assert_eq!(base.join("d.png").unwrap().path, "/a/b/d.png");
        assert_eq!(base.join("./d.png").unwrap().path, "/a/b/d.png");
        assert_eq!(base.join("../img/d.png").unwrap().path, "/a/img/d.png");
        assert_eq!(base.join("../../../x").unwrap().path, "/x");
    }

    #[test]
    fn join_absolute_forms() {
        let base = Url::parse("http://h/a/b/c.html").unwrap();
        assert_eq!(base.join("/root.css").unwrap().path, "/root.css");
        assert_eq!(
            base.join("http://other/q.js").unwrap().to_string(),
            "http://other/q.js"
        );
        let sr = base.join("//cdn.example.com/lib.js").unwrap();
        assert_eq!(sr.scheme, "http");
        assert_eq!(sr.host, "cdn.example.com");
    }

    #[test]
    fn join_query_and_fragment_only() {
        let base = Url::parse("http://h/a?old=1#frag").unwrap();
        let q = base.join("?new=2").unwrap();
        assert_eq!(q.path, "/a");
        assert_eq!(q.query.as_deref(), Some("new=2"));
        assert_eq!(q.fragment, None);
        let f = base.join("#sec").unwrap();
        assert_eq!(f.query.as_deref(), Some("old=1"));
        assert_eq!(f.fragment.as_deref(), Some("sec"));
    }

    #[test]
    fn join_empty_reference_returns_base() {
        let base = Url::parse("http://h/a/b").unwrap();
        assert_eq!(base.join("").unwrap(), base);
    }

    #[test]
    fn request_target_includes_query() {
        let u = Url::parse("http://h/p?a=1").unwrap();
        assert_eq!(u.request_target(), "/p?a=1");
        let u2 = Url::parse("http://h/p").unwrap();
        assert_eq!(u2.request_target(), "/p");
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "http://www.example.com/a/b?x=1#top",
            "https://host:3000/",
            "http://h/p?a=1",
        ] {
            let u = Url::parse(s).unwrap();
            assert_eq!(Url::parse(&u.to_string()).unwrap(), u);
        }
    }

    #[test]
    fn normalize_preserves_trailing_slash() {
        let base = Url::parse("http://h/dir/sub/").unwrap();
        assert_eq!(base.path, "/dir/sub/");
        assert_eq!(base.join("x.png").unwrap().path, "/dir/sub/x.png");
    }

    #[test]
    fn dotdot_does_not_escape_root() {
        let base = Url::parse("http://h/").unwrap();
        assert_eq!(base.join("../../x").unwrap().path, "/x");
    }
}
