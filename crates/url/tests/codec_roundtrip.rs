//! Focused round-trip tests for the pure codecs the property suite leans
//! on: percent-encoding and the legacy JavaScript escape/unescape pair.
//! These pin down the edge cases with a deterministic corpus so a codec
//! regression fails here with a readable input, not just in a generated
//! property case.

use rcb_url::jsescape::{escape, unescape};
use rcb_url::percent;

/// Deterministic edge-case corpus shared by the codec tests.
fn corpus() -> Vec<String> {
    let mut cases: Vec<String> = [
        "",
        " ",
        "plain-ascii_text~.",
        "a b/c?d=e&f#g%",
        "100% + 5% = %zz",             // malformed-escape lookalikes
        "%u0041 %41 %4 %",             // escape-syntax fragments as content
        "key=value&key2=value2",       // query separators as content
        "\u{1}\u{2}\u{3}\t\r\n",       // control characters
        "é è ü ß ñ",                   // Latin-1 range (%XX in jsescape)
        "Ω λ Ж 中文 日本語 한글",      // BMP beyond 0xFF (%uXXXX)
        "🙂🦀𝄞",                       // supplementary plane (surrogate pairs)
        "<tag attr=\"x\">&amp;</tag>", // markup-significant chars
        "]]> closes CDATA",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    // Every single byte 0x00..=0x7F as a one-char string.
    cases.extend((0u8..=0x7F).map(|b| (b as char).to_string()));
    cases
}

#[test]
fn percent_encode_decode_roundtrips() {
    for s in corpus() {
        assert_eq!(percent::decode(&percent::encode(&s)), s, "input {s:?}");
    }
}

#[test]
fn percent_form_coding_roundtrips() {
    for s in corpus() {
        assert_eq!(
            percent::decode_form(&percent::encode_form(&s)),
            s,
            "input {s:?}"
        );
    }
}

#[test]
fn percent_encode_output_is_uri_safe() {
    for s in corpus() {
        let enc = percent::encode(&s);
        assert!(
            enc.bytes().all(|b| b.is_ascii_alphanumeric()
                || matches!(b, b'-' | b'_' | b'.' | b'~' | b'%')),
            "encode({s:?}) produced reserved byte in {enc:?}"
        );
    }
}

#[test]
fn query_codec_roundtrips_hostile_pairs() {
    let pairs: Vec<(String, String)> = vec![
        ("q".into(), "macbook air".into()),
        ("a&b".into(), "c=d".into()),
        ("unicode".into(), "中文 🙂".into()),
        ("empty".into(), "".into()),
        ("".into(), "valueless key".into()),
        ("pct".into(), "50%+50%".into()),
    ];
    let q = percent::build_query(&pairs);
    assert_eq!(percent::parse_query(&q), pairs);
}

#[test]
fn js_escape_unescape_roundtrips() {
    for s in corpus() {
        assert_eq!(unescape(&escape(&s)), s, "input {s:?}");
    }
}

#[test]
fn js_escape_output_is_cdata_and_xml_safe() {
    // The Fig.-4 writer relies on escape() output never containing the
    // characters that could terminate a CDATA section or open markup.
    for s in corpus() {
        let e = escape(&s);
        for banned in ['<', '>', '&', ']', '"', '\''] {
            assert!(
                !e.contains(banned),
                "escape({s:?}) contains {banned:?}: {e}"
            );
        }
        assert!(e.is_ascii(), "escape({s:?}) not ASCII: {e}");
    }
}

#[test]
fn js_escape_matches_browser_reference_values() {
    // Reference outputs from the legacy JS escape() semantics.
    assert_eq!(escape("a1@*_+-./"), "a1@*_+-./");
    assert_eq!(escape(" "), "%20");
    assert_eq!(escape("é"), "%E9");
    assert_eq!(escape("Ω"), "%u03A9");
    assert_eq!(escape("🙂"), "%uD83D%uDE42"); // surrogate pair
    assert_eq!(unescape("%uD83D%uDE42"), "🙂");
}

#[test]
fn js_unescape_tolerates_malformed_input() {
    // Browser behaviour: malformed escapes pass through verbatim.
    assert_eq!(unescape("100%"), "100%");
    assert_eq!(unescape("%zz"), "%zz");
    assert_eq!(unescape("%u12"), "%u12");
    assert_eq!(unescape("%u12zz"), "%u12zz");
    // An unpaired surrogate cannot form a char; it becomes U+FFFD.
    assert_eq!(unescape("%uD83D"), "\u{FFFD}");
}
