//! Byte-size arithmetic and formatting.
//!
//! Table 1 of the paper reports page sizes in kilobytes (e.g. yahoo.com at
//! 130.3 KB); the synthetic site generator and the experiment reports need
//! to move between that human representation and raw byte counts without
//! accumulating rounding surprises.

use std::fmt;

/// A byte count with KB-oriented helpers (1 KB = 1024 bytes, as browsers
/// and the paper's tooling of the era reported).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// From raw bytes.
    pub const fn bytes(n: u64) -> Self {
        ByteSize(n)
    }

    /// From binary kilobytes.
    pub const fn kib(n: u64) -> Self {
        ByteSize(n * 1024)
    }

    /// From fractional kilobytes, rounding to the nearest byte — the paper's
    /// "130.3 KB" style figures.
    pub fn kib_f64(kb: f64) -> Self {
        assert!(kb.is_finite() && kb >= 0.0, "size must be non-negative");
        ByteSize((kb * 1024.0).round() as u64)
    }

    /// Raw byte count.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Size in fractional kilobytes.
    pub fn as_kib_f64(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(other.0))
    }
}

impl std::ops::Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> Self {
        iter.fold(ByteSize::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 {
            write!(f, "{:.1} MB", self.0 as f64 / (1024.0 * 1024.0))
        } else if self.0 >= 1024 {
            write!(f, "{:.1} KB", self.as_kib_f64())
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kb_roundtrip_matches_table1_style() {
        let yahoo = ByteSize::kib_f64(130.3);
        assert!((yahoo.as_kib_f64() - 130.3).abs() < 0.001);
    }

    #[test]
    fn display_units() {
        assert_eq!(ByteSize::bytes(512).to_string(), "512 B");
        assert_eq!(ByteSize::kib(64).to_string(), "64.0 KB");
        assert_eq!(ByteSize::kib(2048).to_string(), "2.0 MB");
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::kib(1) + ByteSize::bytes(24);
        assert_eq!(a.as_bytes(), 1048);
        assert_eq!(
            ByteSize::bytes(10).saturating_sub(ByteSize::bytes(20)),
            ByteSize::ZERO
        );
        let total: ByteSize = vec![ByteSize::bytes(1), ByteSize::bytes(2)]
            .into_iter()
            .sum();
        assert_eq!(total.as_bytes(), 3);
    }
}
