//! Simulated time.
//!
//! The RCB evaluation splits cleanly into network-bound metrics (M1–M4) and
//! CPU-bound metrics (M5/M6). Network-bound experiments run on *virtual*
//! time: a [`SimTime`] is a microsecond count since the start of the
//! simulation, and the discrete-event core in `rcb-sim` advances it. The
//! paper's content timestamps ("milliseconds since midnight of January 1,
//! 1970", §4.1.1) are derived from the same representation.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// A point in simulated time, measured in microseconds from the simulation
/// epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The wall-clock instant the simulation epoch is pinned to, in
    /// milliseconds since the Unix epoch: 2009-06-14 00:00:00 UTC, roughly
    /// the USENIX ATC '09 week.
    pub const WALL_EPOCH_MS: u64 = 1_244_937_600_000;

    /// Builds a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The paper's document timestamp: milliseconds since the Unix epoch.
    ///
    /// The simulation epoch is pinned to an arbitrary fixed wall-clock
    /// instant so that timestamps look like the ones RCB-Agent generates.
    pub fn as_document_timestamp(self) -> u64 {
        Self::WALL_EPOCH_MS + self.as_millis()
    }

    /// Builds the time whose document timestamp equals the given *real*
    /// wall-clock instant (milliseconds since the Unix epoch).
    ///
    /// The real-socket deployment maps `SystemTime::now()` into the
    /// timestamp domain with this constructor, so agent timestamps are the
    /// paper's "milliseconds since midnight of January 1, 1970" (§4.1.1)
    /// rather than a wrapped or shifted count. Instants before the pinned
    /// simulation epoch saturate to `SimTime::ZERO`.
    pub const fn from_unix_millis(ms: u64) -> SimTime {
        SimTime(ms.saturating_sub(Self::WALL_EPOCH_MS) * 1_000)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds (panics on negative/NaN).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be non-negative");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor.
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }

    /// Converts a `std::time::Duration`, saturating at `u64::MAX` µs.
    pub fn from_duration(d: Duration) -> SimDuration {
        SimDuration(u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
    }

    /// The equivalent `std::time::Duration`.
    pub const fn as_duration(self) -> Duration {
        Duration::from_micros(self.0)
    }
}

/// A shared virtual-time source: a microsecond counter that only moves
/// when somebody calls [`VirtualClock::advance_to`]. Waiters block on a
/// condvar; subscribers (server park hubs, the sim fabric) get a callback
/// on every advance so clock-driven waits can re-check their deadlines.
///
/// Lock ordering: the subscriber list is held while callbacks run, so a
/// subscriber must only take leaf locks (a condvar notify, an atomic) —
/// never a lock that can be held while *advancing* the clock.
pub struct VirtualClock {
    now_us: Mutex<u64>,
    advanced: Condvar,
    subscribers: Mutex<Vec<Box<dyn Fn() + Send + Sync>>>,
}

impl VirtualClock {
    /// A virtual clock starting at the simulation epoch.
    pub fn new() -> VirtualClock {
        VirtualClock {
            now_us: Mutex::new(0),
            advanced: Condvar::new(),
            subscribers: Mutex::new(Vec::new()),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime(*self.now_us.lock().unwrap())
    }

    /// Moves time forward to `t` (monotonic: earlier targets are a no-op),
    /// waking condvar waiters and notifying subscribers.
    pub fn advance_to(&self, t: SimTime) {
        {
            let mut now = self.now_us.lock().unwrap();
            if t.0 <= *now {
                return;
            }
            *now = t.0;
        }
        self.advanced.notify_all();
        for f in self.subscribers.lock().unwrap().iter() {
            f();
        }
    }

    /// Moves time forward by `d`; returns the new now.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let target = self.now() + d;
        self.advance_to(target);
        self.now()
    }

    /// Registers a callback invoked after every successful advance.
    pub fn subscribe(&self, f: Box<dyn Fn() + Send + Sync>) {
        self.subscribers.lock().unwrap().push(f);
    }

    /// Blocks the calling thread until virtual time reaches `target`,
    /// slicing the underlying wait so a process that stops advancing the
    /// clock still gets a chance to observe shutdown flags upstream.
    pub fn wait_until(&self, target: SimTime) {
        let mut now = self.now_us.lock().unwrap();
        while *now < target.0 {
            let (guard, _) = self
                .advanced
                .wait_timeout(now, Duration::from_millis(50))
                .unwrap();
            now = guard;
        }
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new()
    }
}

impl fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtualClock({})", self.now())
    }
}

/// Process-wide wall anchor: one `(Instant, unix-millis)` pair captured on
/// first use, so wall-clock `now()` is **monotonic** (derived from
/// `Instant::elapsed`) while still reporting real epoch milliseconds.
fn wall_anchor() -> &'static (Instant, u64) {
    static ANCHOR: OnceLock<(Instant, u64)> = OnceLock::new();
    ANCHOR.get_or_init(|| {
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        (Instant::now(), unix_ms)
    })
}

/// The time source the server paths consult. Cloneable and cheap: either
/// the process wall clock (default — monotonic, anchored to real epoch
/// milliseconds so document timestamps stay §4.1.1-shaped) or a shared
/// [`VirtualClock`] under simulation.
#[derive(Clone, Default)]
pub struct Clock {
    inner: Option<Arc<VirtualClock>>,
}

impl Clock {
    /// The process wall clock.
    pub fn wall() -> Clock {
        Clock { inner: None }
    }

    /// A clock view over a shared virtual-time source.
    pub fn virtual_from(vc: Arc<VirtualClock>) -> Clock {
        Clock { inner: Some(vc) }
    }

    /// Creates a fresh virtual clock and a `Clock` view onto it.
    pub fn new_virtual() -> (Clock, Arc<VirtualClock>) {
        let vc = Arc::new(VirtualClock::new());
        (Clock::virtual_from(vc.clone()), vc)
    }

    /// Whether this clock is driven by a [`VirtualClock`].
    pub fn is_virtual(&self) -> bool {
        self.inner.is_some()
    }

    /// The current time. Wall clocks report real epoch-anchored time but
    /// never go backwards (monotonic `Instant` base); virtual clocks
    /// report the shared counter.
    pub fn now(&self) -> SimTime {
        match &self.inner {
            Some(vc) => vc.now(),
            None => {
                let (base, unix_ms) = wall_anchor();
                SimTime::from_unix_millis(*unix_ms) + SimDuration::from_duration(base.elapsed())
            }
        }
    }

    /// Sleeps for `d`: a real `thread::sleep` on the wall clock, a
    /// condvar wait for virtual time to reach `now + d` otherwise.
    pub fn sleep(&self, d: SimDuration) {
        match &self.inner {
            Some(vc) => vc.wait_until(vc.now() + d),
            None => std::thread::sleep(d.as_duration()),
        }
    }

    /// Registers `f` to run after every virtual advance; no-op on the
    /// wall clock (real time needs no notifications).
    pub fn on_advance(&self, f: Box<dyn Fn() + Send + Sync>) {
        if let Some(vc) = &self.inner {
            vc.subscribe(f);
        }
    }
}

impl fmt::Debug for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(vc) => write!(f, "Clock::virtual({})", vc.now()),
            None => write!(f, "Clock::wall"),
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_millis(1_500);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).as_millis(), 1_750);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(SimTime::ZERO).as_millis(), 1_500);
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn document_timestamp_is_wall_anchored() {
        let t = SimTime::from_secs(2);
        assert_eq!(t.as_document_timestamp(), 1_244_937_600_000 + 2_000);
    }

    #[test]
    fn from_unix_millis_roundtrips_document_timestamps() {
        // A 2026 wall-clock instant survives the round trip exactly — no
        // `% 1_000_000_000` wrap (which recurred every ~11.6 days).
        let ms = 1_785_000_000_123u64;
        assert_eq!(SimTime::from_unix_millis(ms).as_document_timestamp(), ms);
        // Instants before the pinned epoch saturate instead of underflowing.
        assert_eq!(SimTime::from_unix_millis(5), SimTime::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(1.0).as_micros(), 1_000_000);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total.as_millis(), 10);
    }

    #[test]
    fn duration_interop_roundtrips() {
        let d = SimDuration::from_millis(1_234);
        assert_eq!(SimDuration::from_duration(d.as_duration()), d);
        assert_eq!(
            SimDuration::from_duration(Duration::from_micros(7)).as_micros(),
            7
        );
    }

    #[test]
    fn wall_clock_is_monotonic_and_epoch_anchored() {
        let clock = Clock::wall();
        assert!(!clock.is_virtual());
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a, "wall now() must never go backwards");
        // Epoch-anchored: the document timestamp is a plausible real
        // unix-millis value (after the pinned 2009 epoch).
        assert!(a.as_document_timestamp() > SimTime::WALL_EPOCH_MS);
    }

    #[test]
    fn virtual_clock_only_moves_on_advance() {
        let (clock, vc) = Clock::new_virtual();
        assert!(clock.is_virtual());
        assert_eq!(clock.now(), SimTime::ZERO);
        vc.advance_to(SimTime::from_millis(5));
        assert_eq!(clock.now(), SimTime::from_millis(5));
        // Monotonic: an earlier target is a no-op.
        vc.advance_to(SimTime::from_millis(3));
        assert_eq!(clock.now(), SimTime::from_millis(5));
        assert_eq!(
            vc.advance(SimDuration::from_millis(2)),
            SimTime::from_millis(7)
        );
    }

    #[test]
    fn virtual_advance_notifies_subscribers_and_waiters() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let (clock, vc) = Clock::new_virtual();
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        clock.on_advance(Box::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        let waiter = {
            let vc = vc.clone();
            std::thread::spawn(move || {
                vc.wait_until(SimTime::from_secs(1));
                vc.now()
            })
        };
        // Give the waiter a moment to block, then release it.
        std::thread::sleep(Duration::from_millis(10));
        vc.advance_to(SimTime::from_secs(1));
        assert_eq!(waiter.join().unwrap(), SimTime::from_secs(1));
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        vc.advance_to(SimTime::from_secs(1)); // no-op: no second callback
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn virtual_sleep_is_clock_driven() {
        let (clock, vc) = Clock::new_virtual();
        let sleeper = {
            let clock = clock.clone();
            std::thread::spawn(move || clock.sleep(SimDuration::from_secs(30)))
        };
        std::thread::sleep(Duration::from_millis(10));
        assert!(!sleeper.is_finished(), "virtual sleep ignores wall time");
        vc.advance(SimDuration::from_secs(30));
        sleeper.join().unwrap();
    }
}
