//! Simulated time.
//!
//! The RCB evaluation splits cleanly into network-bound metrics (M1–M4) and
//! CPU-bound metrics (M5/M6). Network-bound experiments run on *virtual*
//! time: a [`SimTime`] is a microsecond count since the start of the
//! simulation, and the discrete-event core in `rcb-sim` advances it. The
//! paper's content timestamps ("milliseconds since midnight of January 1,
//! 1970", §4.1.1) are derived from the same representation.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in microseconds from the simulation
/// epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The wall-clock instant the simulation epoch is pinned to, in
    /// milliseconds since the Unix epoch: 2009-06-14 00:00:00 UTC, roughly
    /// the USENIX ATC '09 week.
    pub const WALL_EPOCH_MS: u64 = 1_244_937_600_000;

    /// Builds a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The paper's document timestamp: milliseconds since the Unix epoch.
    ///
    /// The simulation epoch is pinned to an arbitrary fixed wall-clock
    /// instant so that timestamps look like the ones RCB-Agent generates.
    pub fn as_document_timestamp(self) -> u64 {
        Self::WALL_EPOCH_MS + self.as_millis()
    }

    /// Builds the time whose document timestamp equals the given *real*
    /// wall-clock instant (milliseconds since the Unix epoch).
    ///
    /// The real-socket deployment maps `SystemTime::now()` into the
    /// timestamp domain with this constructor, so agent timestamps are the
    /// paper's "milliseconds since midnight of January 1, 1970" (§4.1.1)
    /// rather than a wrapped or shifted count. Instants before the pinned
    /// simulation epoch saturate to `SimTime::ZERO`.
    pub const fn from_unix_millis(ms: u64) -> SimTime {
        SimTime(ms.saturating_sub(Self::WALL_EPOCH_MS) * 1_000)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds (panics on negative/NaN).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be non-negative");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor.
    pub const fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_millis(1_500);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).as_millis(), 1_750);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(SimTime::ZERO).as_millis(), 1_500);
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(20);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn document_timestamp_is_wall_anchored() {
        let t = SimTime::from_secs(2);
        assert_eq!(t.as_document_timestamp(), 1_244_937_600_000 + 2_000);
    }

    #[test]
    fn from_unix_millis_roundtrips_document_timestamps() {
        // A 2026 wall-clock instant survives the round trip exactly — no
        // `% 1_000_000_000` wrap (which recurred every ~11.6 days).
        let ms = 1_785_000_000_123u64;
        assert_eq!(SimTime::from_unix_millis(ms).as_document_timestamp(), ms);
        // Instants before the pinned epoch saturate instead of underflowing.
        assert_eq!(SimTime::from_unix_millis(5), SimTime::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(1.0).as_micros(), 1_000_000);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total.as_millis(), 10);
    }
}
