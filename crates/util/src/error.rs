//! Workspace-wide error type.
//!
//! Every fallible public API in the workspace returns [`Result<T>`]. The
//! variants map onto the failure domains of the RCB system: wire-format
//! parsing, protocol violations, authentication, cache lookups, and I/O.

use std::fmt;

/// The error type shared by all RCB crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RcbError {
    /// A parser rejected its input (HTTP, HTML, XML, or URL).
    Parse {
        /// Which grammar rejected the input (e.g. `"http"`, `"url"`).
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// The peer violated the co-browsing protocol.
    Protocol(String),
    /// Request authentication failed (bad or missing HMAC, replay, etc.).
    Auth(String),
    /// A cache lookup missed or the entry was unusable.
    CacheMiss(String),
    /// A referenced entity (page, object, session, node) does not exist.
    NotFound(String),
    /// The caller passed an argument outside the accepted domain.
    InvalidInput(String),
    /// An operating-system I/O error, stringified for `Clone`/`Eq`.
    Io(String),
}

impl RcbError {
    /// Convenience constructor for [`RcbError::Parse`].
    pub fn parse(what: &'static str, detail: impl Into<String>) -> Self {
        RcbError::Parse {
            what,
            detail: detail.into(),
        }
    }

    /// Returns a short machine-friendly category label.
    pub fn category(&self) -> &'static str {
        match self {
            RcbError::Parse { .. } => "parse",
            RcbError::Protocol(_) => "protocol",
            RcbError::Auth(_) => "auth",
            RcbError::CacheMiss(_) => "cache-miss",
            RcbError::NotFound(_) => "not-found",
            RcbError::InvalidInput(_) => "invalid-input",
            RcbError::Io(_) => "io",
        }
    }
}

impl fmt::Display for RcbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RcbError::Parse { what, detail } => write!(f, "{what} parse error: {detail}"),
            RcbError::Protocol(d) => write!(f, "protocol error: {d}"),
            RcbError::Auth(d) => write!(f, "authentication error: {d}"),
            RcbError::CacheMiss(d) => write!(f, "cache miss: {d}"),
            RcbError::NotFound(d) => write!(f, "not found: {d}"),
            RcbError::InvalidInput(d) => write!(f, "invalid input: {d}"),
            RcbError::Io(d) => write!(f, "i/o error: {d}"),
        }
    }
}

impl std::error::Error for RcbError {}

impl From<std::io::Error> for RcbError {
    fn from(e: std::io::Error) -> Self {
        RcbError::Io(e.to_string())
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, RcbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_detail() {
        let e = RcbError::parse("http", "truncated request line");
        assert_eq!(e.to_string(), "http parse error: truncated request line");
    }

    #[test]
    fn categories_are_stable() {
        assert_eq!(RcbError::Auth("x".into()).category(), "auth");
        assert_eq!(RcbError::CacheMiss("x".into()).category(), "cache-miss");
        assert_eq!(RcbError::Protocol("x".into()).category(), "protocol");
        assert_eq!(RcbError::NotFound("x".into()).category(), "not-found");
        assert_eq!(RcbError::Io("x".into()).category(), "io");
        assert_eq!(
            RcbError::InvalidInput("x".into()).category(),
            "invalid-input"
        );
        assert_eq!(RcbError::parse("url", "x").category(), "parse");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: RcbError = io.into();
        assert_eq!(e.category(), "io");
        assert!(e.to_string().contains("boom"));
    }
}
