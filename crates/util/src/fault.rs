//! Test-only fault injection for the syscall-shaped I/O boundary.
//!
//! The server backends survive transient I/O failures (`EMFILE` storms at
//! `accept(2)`, `EWOULDBLOCK` mid-write, a failed `epoll_ctl(2)`), but
//! those conditions are nearly impossible to provoke reliably from a real
//! socket in a test. This module is the lever: a test arms "fail the next
//! `K` calls of this [`Op`] with errno `E`", and the hooked call sites
//! ([`crate::sys::Epoll`]'s `epoll_ctl`, the server backends' `accept`
//! loops, and the nonblocking `ResponseWriter` write path in `rcb-http`)
//! consume one injected failure per call before touching the kernel.
//!
//! Everything stateful lives behind the `fault-injection` cargo feature:
//! without it, [`take`] is a `const`-foldable `None` and the hooks compile
//! to nothing, so production builds carry no atomics and no branches. Test
//! targets that need the lever enable the feature through their
//! dev-dependency on `rcb-util`.
//!
//! Injection state is process-global (the hooked call sites have no test
//! context to key on), so tests that arm faults must serialize themselves
//! (a `static Mutex` in the test file) and disarm with [`clear`] — ideally
//! from a drop guard so a failing assertion cannot leak armed faults into
//! the next test.

#[cfg(not(feature = "fault-injection"))]
use std::io;

/// The hooked operations. Each has an independent fail-next budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `accept(2)` on a listening socket (both server backends).
    Accept = 0,
    /// `epoll_ctl(2)` add/modify/delete (epoll backends only).
    EpollCtl = 1,
    /// A response-body write on a nonblocking socket
    /// (`ResponseWriter::write_some`, epoll backends only — the workers
    /// backend's blocking writes are deliberately unhooked, because a
    /// blocking socket can never legitimately return `EWOULDBLOCK`).
    Write = 2,
}

/// Number of distinct [`Op`]s (sizes the per-op state arrays).
pub const OPS: usize = 3;

// Linux errno values the regression tests inject (transcribed here — the
// workspace is libc-free by design).
/// `EAGAIN`/`EWOULDBLOCK`: resource temporarily unavailable.
pub const EAGAIN: i32 = 11;
/// `EMFILE`: per-process fd table full — the classic accept-storm errno.
pub const EMFILE: i32 = 24;
/// `ECONNABORTED`: connection aborted between accept and use.
pub const ECONNABORTED: i32 = 103;

#[cfg(feature = "fault-injection")]
mod armed {
    use super::{Op, OPS};
    use std::io;
    use std::sync::atomic::{AtomicI32, AtomicU64, Ordering};

    static REMAINING: [AtomicU64; OPS] = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
    static ERRNO: [AtomicI32; OPS] = [AtomicI32::new(0), AtomicI32::new(0), AtomicI32::new(0)];

    /// Arms `op`: the next `k` [`take`](super::take) calls yield
    /// `io::Error::from_raw_os_error(errno)`.
    pub fn fail_next(op: Op, k: u64, errno: i32) {
        let i = op as usize;
        ERRNO[i].store(errno, Ordering::Relaxed);
        REMAINING[i].store(k, Ordering::Release);
    }

    /// Disarms every operation.
    pub fn clear() {
        for r in &REMAINING {
            r.store(0, Ordering::Release);
        }
    }

    /// Injected failures still pending for `op` (0 = disarmed). Tests use
    /// this to prove the hooked path actually consumed the faults.
    pub fn pending(op: Op) -> u64 {
        REMAINING[op as usize].load(Ordering::Acquire)
    }

    /// Consumes one injected failure for `op`, if armed.
    pub fn take(op: Op) -> Option<io::Error> {
        let i = op as usize;
        let mut cur = REMAINING[i].load(Ordering::Acquire);
        loop {
            if cur == 0 {
                return None;
            }
            match REMAINING[i].compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    return Some(io::Error::from_raw_os_error(
                        ERRNO[i].load(Ordering::Relaxed),
                    ))
                }
                Err(now) => cur = now,
            }
        }
    }
}

#[cfg(feature = "fault-injection")]
pub use armed::{clear, fail_next, pending, take};

/// Without the `fault-injection` feature the hook is inert: always `None`,
/// and the arming API does not exist (only feature-enabled test targets
/// may arm faults).
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn take(_op: Op) -> Option<io::Error> {
    None
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    // The whole module state is global; this file's tests all run against
    // ops the I/O tests elsewhere never arm concurrently in this crate's
    // own test binary, and each clears behind itself.

    #[test]
    fn budget_counts_down_and_disarms() {
        clear();
        fail_next(Op::EpollCtl, 2, EMFILE);
        assert_eq!(pending(Op::EpollCtl), 2);
        let e = take(Op::EpollCtl).expect("first armed failure");
        assert_eq!(e.raw_os_error(), Some(EMFILE));
        assert!(take(Op::EpollCtl).is_some());
        assert!(take(Op::EpollCtl).is_none(), "budget exhausted");
        assert_eq!(pending(Op::EpollCtl), 0);
    }

    #[test]
    fn ops_are_independent_and_clear_disarms() {
        clear();
        fail_next(Op::Accept, 1, ECONNABORTED);
        assert!(take(Op::Write).is_none(), "other ops unaffected");
        fail_next(Op::Write, 5, EAGAIN);
        clear();
        assert!(take(Op::Accept).is_none());
        assert!(take(Op::Write).is_none());
    }

    #[test]
    fn eagain_maps_to_would_block_kind() {
        clear();
        fail_next(Op::Write, 1, EAGAIN);
        let e = take(Op::Write).unwrap();
        assert_eq!(e.kind(), std::io::ErrorKind::WouldBlock);
        clear();
    }
}
