//! Test-only fault injection for the syscall-shaped I/O boundary.
//!
//! The server backends survive transient I/O failures (`EMFILE` storms at
//! `accept(2)`, `EWOULDBLOCK` mid-write, a failed `epoll_ctl(2)`), but
//! those conditions are nearly impossible to provoke reliably from a real
//! socket in a test. This module is the lever: a test arms a *fault
//! schedule* for an [`Op`] — "fail the next `K` calls" ([`fail_next`]),
//! "fail exactly the 3rd and 7th call" ([`script`]), or "fail each call
//! with seeded probability `p`" ([`seeded`]) — and the hooked call sites
//! ([`crate::sys::Epoll`]'s `epoll_ctl`, the server backends' `accept`
//! loops, and the nonblocking `ResponseWriter` write path in `rcb-http`)
//! consume one injected failure per call before touching the kernel.
//!
//! Everything stateful lives behind the `fault-injection` cargo feature:
//! without it, [`take`] is a `const`-foldable `None` and the hooks compile
//! to nothing, so production builds carry no atomics and no branches. Test
//! targets that need the lever enable the feature through their
//! dev-dependency on `rcb-util`.
//!
//! Injection state is process-global (the hooked call sites have no test
//! context to key on), so tests that arm faults must serialize themselves
//! (a `static Mutex` in the test file) and disarm with [`clear`] — ideally
//! from a drop guard so a failing assertion cannot leak armed faults into
//! the next test.

#[cfg(not(feature = "fault-injection"))]
use std::io;

/// The hooked operations. Each has an independent fail-next budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `accept(2)` on a listening socket (both server backends).
    Accept = 0,
    /// `epoll_ctl(2)` add/modify/delete (epoll backends only).
    EpollCtl = 1,
    /// A response-body write on a nonblocking socket
    /// (`ResponseWriter::write_some`, epoll backends only — the workers
    /// backend's blocking writes are deliberately unhooked, because a
    /// blocking socket can never legitimately return `EWOULDBLOCK`).
    Write = 2,
    /// A request-bytes read off an accepted connection (both epoll
    /// engines' `read_conn` and the workers backend's rotation read).
    Read = 3,
}

/// Number of distinct [`Op`]s (sizes the per-op state arrays).
pub const OPS: usize = 4;

// Linux errno values the regression tests inject (transcribed here — the
// workspace is libc-free by design).
/// `EAGAIN`/`EWOULDBLOCK`: resource temporarily unavailable.
pub const EAGAIN: i32 = 11;
/// `EMFILE`: per-process fd table full — the classic accept-storm errno.
pub const EMFILE: i32 = 24;
/// `ECONNABORTED`: connection aborted between accept and use.
pub const ECONNABORTED: i32 = 103;
/// `ECONNRESET`: connection reset by peer mid-read.
pub const ECONNRESET: i32 = 104;

#[cfg(feature = "fault-injection")]
mod armed {
    use super::{Op, OPS};
    use crate::DetRng;
    use std::io;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    /// One armed schedule for one [`Op`]. `Budget` is PR 5's original
    /// "fail the next K calls"; `Script` and `Seeded` generalize it into
    /// deterministic call-indexed and probabilistic schedules.
    enum Plan {
        /// Fail the next `remaining` calls with `errno`.
        Budget { remaining: u64, errno: i32 },
        /// Fail specific call ordinals (1-based since arming). `entries`
        /// is sorted ascending; `calls` counts every hooked call.
        Script {
            calls: u64,
            idx: usize,
            entries: Vec<(u64, i32)>,
        },
        /// Bernoulli(`p`) failure per call from a seeded RNG, capped at
        /// `remaining` total injections so a storm always ends.
        Seeded {
            rng: DetRng,
            p: f64,
            errno: i32,
            remaining: u64,
        },
    }

    impl Plan {
        fn pending(&self) -> u64 {
            match self {
                Plan::Budget { remaining, .. } => *remaining,
                Plan::Script { idx, entries, .. } => (entries.len() - idx) as u64,
                Plan::Seeded { remaining, .. } => *remaining,
            }
        }

        /// Advances one hooked call; returns the errno to inject, if any.
        fn step(&mut self) -> Option<i32> {
            match self {
                Plan::Budget { remaining, errno } => {
                    if *remaining == 0 {
                        return None;
                    }
                    *remaining -= 1;
                    Some(*errno)
                }
                Plan::Script {
                    calls,
                    idx,
                    entries,
                } => {
                    *calls += 1;
                    match entries.get(*idx) {
                        Some(&(nth, errno)) if nth == *calls => {
                            *idx += 1;
                            Some(errno)
                        }
                        _ => None,
                    }
                }
                Plan::Seeded {
                    rng,
                    p,
                    errno,
                    remaining,
                } => {
                    if *remaining == 0 || !rng.chance(*p) {
                        return None;
                    }
                    *remaining -= 1;
                    Some(*errno)
                }
            }
        }
    }

    // Per-op armed flag (lock-free fast path for the common disarmed
    // case) + the schedule table behind a plain mutex: this is test-only
    // machinery, and a schedule needs more state than atomics can hold.
    static ARMED: [AtomicBool; OPS] = [
        AtomicBool::new(false),
        AtomicBool::new(false),
        AtomicBool::new(false),
        AtomicBool::new(false),
    ];
    static PLANS: Mutex<[Option<Plan>; OPS]> = Mutex::new([None, None, None, None]);

    fn install(op: Op, plan: Plan) {
        let i = op as usize;
        PLANS.lock().unwrap()[i] = Some(plan);
        ARMED[i].store(true, Ordering::Release);
    }

    /// Arms `op`: the next `k` [`take`](super::take) calls yield
    /// `io::Error::from_raw_os_error(errno)`.
    pub fn fail_next(op: Op, k: u64, errno: i32) {
        install(
            op,
            Plan::Budget {
                remaining: k,
                errno,
            },
        );
    }

    /// Arms a scripted schedule: `entries` are `(nth_call, errno)` pairs,
    /// `nth_call` 1-based counted from arming. The nth hooked call of
    /// `op` fails with the paired errno; every other call passes through.
    /// Entries are sorted internally; duplicate ordinals keep the first.
    pub fn script(op: Op, entries: &[(u64, i32)]) {
        let mut sorted: Vec<(u64, i32)> = entries.to_vec();
        sorted.sort_by_key(|&(nth, _)| nth);
        sorted.dedup_by_key(|&mut (nth, _)| nth);
        install(
            op,
            Plan::Script {
                calls: 0,
                idx: 0,
                entries: sorted,
            },
        );
    }

    /// Arms a seeded probabilistic schedule: each hooked call of `op`
    /// fails with probability `p` (drawn from a [`DetRng`] seeded with
    /// `seed`, so the schedule is reproducible), with at most
    /// `max_failures` total injections.
    pub fn seeded(op: Op, seed: u64, p: f64, errno: i32, max_failures: u64) {
        install(
            op,
            Plan::Seeded {
                rng: DetRng::new(seed),
                p,
                errno,
                remaining: max_failures,
            },
        );
    }

    /// Disarms every operation.
    pub fn clear() {
        let mut plans = PLANS.lock().unwrap();
        for (i, slot) in plans.iter_mut().enumerate() {
            *slot = None;
            ARMED[i].store(false, Ordering::Release);
        }
    }

    /// Injected failures still pending for `op` (0 = disarmed; a seeded
    /// plan reports its remaining budget). Tests use this to prove the
    /// hooked path actually consumed the faults.
    pub fn pending(op: Op) -> u64 {
        if !ARMED[op as usize].load(Ordering::Acquire) {
            return 0;
        }
        PLANS.lock().unwrap()[op as usize]
            .as_ref()
            .map_or(0, Plan::pending)
    }

    /// Consumes one hooked call for `op`: advances the armed schedule and
    /// returns the injected failure, if this call is scheduled to fail.
    pub fn take(op: Op) -> Option<io::Error> {
        let i = op as usize;
        if !ARMED[i].load(Ordering::Acquire) {
            return None;
        }
        let mut plans = PLANS.lock().unwrap();
        let slot = plans[i].as_mut()?;
        let fired = slot.step();
        if slot.pending() == 0 && !matches!(slot, Plan::Script { .. }) {
            // Budget/seeded plans self-disarm when spent; scripts stay
            // armed so later calls keep counting toward the schedule
            // (clear() removes them — which the drop-guard idiom does).
            plans[i] = None;
            ARMED[i].store(false, Ordering::Release);
        }
        fired.map(io::Error::from_raw_os_error)
    }
}

#[cfg(feature = "fault-injection")]
pub use armed::{clear, fail_next, pending, script, seeded, take};

/// Without the `fault-injection` feature the hook is inert: always `None`,
/// and the arming API does not exist (only feature-enabled test targets
/// may arm faults).
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn take(_op: Op) -> Option<io::Error> {
    None
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    // The whole module state is global; this file's tests all run against
    // ops the I/O tests elsewhere never arm concurrently in this crate's
    // own test binary, and each clears behind itself.

    #[test]
    fn budget_counts_down_and_disarms() {
        clear();
        fail_next(Op::EpollCtl, 2, EMFILE);
        assert_eq!(pending(Op::EpollCtl), 2);
        let e = take(Op::EpollCtl).expect("first armed failure");
        assert_eq!(e.raw_os_error(), Some(EMFILE));
        assert!(take(Op::EpollCtl).is_some());
        assert!(take(Op::EpollCtl).is_none(), "budget exhausted");
        assert_eq!(pending(Op::EpollCtl), 0);
    }

    #[test]
    fn ops_are_independent_and_clear_disarms() {
        clear();
        fail_next(Op::Accept, 1, ECONNABORTED);
        assert!(take(Op::Write).is_none(), "other ops unaffected");
        fail_next(Op::Write, 5, EAGAIN);
        clear();
        assert!(take(Op::Accept).is_none());
        assert!(take(Op::Write).is_none());
    }

    #[test]
    fn eagain_maps_to_would_block_kind() {
        clear();
        fail_next(Op::Write, 1, EAGAIN);
        let e = take(Op::Write).unwrap();
        assert_eq!(e.kind(), std::io::ErrorKind::WouldBlock);
        clear();
    }

    #[test]
    fn scripted_schedule_fails_exact_call_ordinals() {
        clear();
        // Unsorted on purpose: fail calls #2 and #4 only.
        script(Op::EpollCtl, &[(4, EMFILE), (2, ECONNABORTED)]);
        assert_eq!(pending(Op::EpollCtl), 2);
        assert!(take(Op::EpollCtl).is_none(), "call 1 passes");
        let e = take(Op::EpollCtl).expect("call 2 fails");
        assert_eq!(e.raw_os_error(), Some(ECONNABORTED));
        assert!(take(Op::EpollCtl).is_none(), "call 3 passes");
        let e = take(Op::EpollCtl).expect("call 4 fails");
        assert_eq!(e.raw_os_error(), Some(EMFILE));
        assert_eq!(pending(Op::EpollCtl), 0);
        assert!(take(Op::EpollCtl).is_none(), "script spent: passthrough");
        clear();
    }

    #[test]
    fn seeded_schedule_is_reproducible_and_capped() {
        clear();
        let run = |seed: u64| -> Vec<bool> {
            seeded(Op::Accept, seed, 0.5, EAGAIN, 8);
            let pattern: Vec<bool> = (0..64).map(|_| take(Op::Accept).is_some()).collect();
            clear();
            pattern
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed, same fault pattern");
        assert_eq!(
            a.iter().filter(|&&f| f).count(),
            8,
            "p=0.5 over 64 calls must hit the 8-failure cap"
        );
        let c = run(43);
        assert_ne!(a, c, "different seed, different pattern");
        clear();
    }
}
