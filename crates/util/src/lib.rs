//! Shared plumbing for the RCB reproduction.
//!
//! This crate hosts the pieces every other crate leans on: the error type,
//! the simulated-time representation, a deterministic RNG (so every
//! experiment is exactly reproducible), byte-size helpers, and lightweight
//! metrics primitives (counters, histograms, stopwatches).
//!
//! Nothing in here is specific to co-browsing; it is the "standard library"
//! of the workspace.

pub mod bytesize;
pub mod clock;
pub mod error;
pub mod metrics;
pub mod rng;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub mod sys;

pub use bytesize::ByteSize;
pub use clock::{SimDuration, SimTime};
pub use error::{RcbError, Result};
pub use metrics::{Counter, Histogram, Stopwatch};
pub use rng::DetRng;
