//! Shared plumbing for the RCB reproduction.
//!
//! This crate hosts the pieces every other crate leans on: the error type,
//! the simulated-time representation, a deterministic RNG (so every
//! experiment is exactly reproducible), byte-size helpers, and lightweight
//! metrics primitives (counters, histograms, stopwatches).
//!
//! Nothing in here is specific to co-browsing; it is the "standard library"
//! of the workspace.

pub mod bytesize;
pub mod clock;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod rng;
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub mod sys;

pub use bytesize::ByteSize;
pub use clock::{Clock, SimDuration, SimTime, VirtualClock};
pub use error::{RcbError, Result};
pub use metrics::{nearest_rank_index, percentile_nearest_rank, Counter, Histogram, Stopwatch};
pub use rng::DetRng;

/// The soft `RLIMIT_NOFILE` of this process, where the syscall shim
/// exists; `None` elsewhere. The portable face of `sys::nofile_limit`,
/// cfg-gated here — next to the `sys` module declaration — so callers
/// never repeat the platform predicate.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub fn nofile_soft() -> Option<u64> {
    sys::nofile_limit().ok().map(|(soft, _hard)| soft)
}

/// Fallback for targets without the syscall shim.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn nofile_soft() -> Option<u64> {
    None
}
