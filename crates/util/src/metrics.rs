//! Lightweight measurement primitives.
//!
//! The experiment harness needs three things: event counters, duration
//! histograms with summary statistics (the paper reports per-site averages
//! over five repetitions), and a wall-clock stopwatch for the CPU-bound
//! metrics M5/M6.

use std::time::Instant;

use crate::clock::SimDuration;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A duration sample set with summary statistics.
///
/// Stores raw samples (experiments here record at most a few thousand) so
/// exact percentiles can be computed; no bucketing error.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<SimDuration>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u128 = self.samples.iter().map(|d| d.as_micros() as u128).sum();
        SimDuration::from_micros((total / self.samples.len() as u128) as u64)
    }

    /// Exact percentile via nearest-rank (`p` in `[0, 100]`).
    pub fn percentile(&self, p: f64) -> SimDuration {
        let mut sorted = self.samples.clone();
        sorted.sort();
        match nearest_rank_index(sorted.len(), p) {
            Some(idx) => sorted[idx],
            None => SimDuration::ZERO,
        }
    }

    /// Sample standard deviation in microseconds (0 for <2 samples).
    ///
    /// The paper reports five-repetition averages; reports here add the
    /// spread so a reader can judge simulator determinism vs CPU noise.
    pub fn stddev_micros(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mean = self.mean().as_micros() as f64;
        let var: f64 = self
            .samples
            .iter()
            .map(|d| {
                let x = d.as_micros() as f64 - mean;
                x * x
            })
            .sum::<f64>()
            / (self.samples.len() - 1) as f64;
        var.sqrt()
    }

    /// Minimum sample, or zero when empty.
    pub fn min(&self) -> SimDuration {
        self.samples
            .iter()
            .copied()
            .min()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Maximum sample, or zero when empty.
    pub fn max(&self) -> SimDuration {
        self.samples
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Borrow of the raw samples.
    pub fn samples(&self) -> &[SimDuration] {
        &self.samples
    }
}

/// Index of the nearest-rank percentile in a sorted slice of length `len`.
///
/// Nearest-rank definition: `rank = ceil(p/100 · len)` clamped to
/// `[1, len]`; the returned index is `rank - 1`. Returns `None` for an
/// empty slice. `p` is clamped to `[0, 100]`, so `p = 0` selects the
/// minimum and `p = 100` the maximum.
///
/// This is the one audited implementation shared by the router's
/// per-session outlier aggregation and the bench gates; the hand-rolled
/// `ceil`/`clamp` (and off-by-one `round`) variants it replaced disagreed
/// at the boundaries (len 1, p = 100, all-equal ties).
pub fn nearest_rank_index(len: usize, p: f64) -> Option<usize> {
    if len == 0 {
        return None;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * len as f64).ceil() as usize;
    Some(rank.clamp(1, len) - 1)
}

/// Nearest-rank percentile of an already **sorted ascending** slice.
///
/// Thin wrapper over [`nearest_rank_index`] for the common `u64` sample
/// case (microsecond latencies, byte counts). Returns `None` when empty.
pub fn percentile_nearest_rank(sorted: &[u64], p: f64) -> Option<u64> {
    nearest_rank_index(sorted.len(), p).map(|i| sorted[i])
}

/// Wall-clock stopwatch for CPU-bound measurements (M5/M6).
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed wall-clock time converted into a [`SimDuration`] so CPU and
    /// network metrics share one report type.
    pub fn elapsed(&self) -> SimDuration {
        SimDuration::from_micros(self.start.elapsed().as_micros() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_summary() {
        let mut h = Histogram::new();
        for ms in [10u64, 20, 30, 40, 50] {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.mean().as_millis(), 30);
        assert_eq!(h.min().as_millis(), 10);
        assert_eq!(h.max().as_millis(), 50);
        assert_eq!(h.percentile(50.0).as_millis(), 30);
        assert_eq!(h.percentile(100.0).as_millis(), 50);
        assert_eq!(h.percentile(0.0).as_millis(), 10);
    }

    #[test]
    fn stddev_measures_spread() {
        let mut tight = Histogram::new();
        let mut wide = Histogram::new();
        for ms in [100u64, 100, 100] {
            tight.record(SimDuration::from_millis(ms));
        }
        for ms in [50u64, 100, 150] {
            wide.record(SimDuration::from_millis(ms));
        }
        assert_eq!(tight.stddev_micros(), 0.0);
        assert!((wide.stddev_micros() - 50_000.0).abs() < 1.0);
        assert_eq!(Histogram::new().stddev_micros(), 0.0);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(99.0), SimDuration::ZERO);
    }

    #[test]
    fn nearest_rank_len_one() {
        // Any percentile of a single sample is that sample.
        for p in [0.0, 0.1, 50.0, 99.0, 100.0] {
            assert_eq!(nearest_rank_index(1, p), Some(0), "p={p}");
            assert_eq!(percentile_nearest_rank(&[42], p), Some(42), "p={p}");
        }
    }

    #[test]
    fn nearest_rank_len_100() {
        let sorted: Vec<u64> = (1..=100).collect();
        // With len 100, rank = ceil(p) exactly: p99 is the 99th value.
        assert_eq!(percentile_nearest_rank(&sorted, 99.0), Some(99));
        assert_eq!(percentile_nearest_rank(&sorted, 100.0), Some(100));
        assert_eq!(percentile_nearest_rank(&sorted, 50.0), Some(50));
        assert_eq!(percentile_nearest_rank(&sorted, 1.0), Some(1));
        // p = 0 clamps the rank up to 1: the minimum, never a panic.
        assert_eq!(percentile_nearest_rank(&sorted, 0.0), Some(1));
        // p99.5 must round *up* to rank 100, not truncate to 99.
        assert_eq!(percentile_nearest_rank(&sorted, 99.5), Some(100));
    }

    #[test]
    fn nearest_rank_all_equal() {
        let sorted = [7u64; 31];
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile_nearest_rank(&sorted, p), Some(7), "p={p}");
        }
    }

    #[test]
    fn nearest_rank_empty_and_out_of_range() {
        assert_eq!(nearest_rank_index(0, 99.0), None);
        assert_eq!(percentile_nearest_rank(&[], 50.0), None);
        // Out-of-range percentiles clamp instead of indexing out of bounds.
        assert_eq!(percentile_nearest_rank(&[1, 2, 3], -5.0), Some(1));
        assert_eq!(percentile_nearest_rank(&[1, 2, 3], 250.0), Some(3));
    }

    #[test]
    fn stopwatch_moves_forward() {
        let sw = Stopwatch::start();
        let mut spin = 0u64;
        for i in 0..10_000u64 {
            spin = spin.wrapping_add(i);
        }
        assert!(spin > 0);
        // Elapsed is non-decreasing; two reads should be ordered.
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }
}
