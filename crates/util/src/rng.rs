//! Deterministic pseudo-random number generation.
//!
//! Every experiment in the repository must be exactly reproducible, so all
//! workload generation flows through [`DetRng`], a small SplitMix64-based
//! generator seeded explicitly by the caller. (The `rand` crate is used only
//! where true entropy is appropriate, e.g. session keys in the real-TCP
//! deployment path.)

/// A deterministic 64-bit PRNG (SplitMix64).
///
/// SplitMix64 passes BigCrush for the quality levels needed here (workload
/// shaping, jitter, Likert sampling) and is trivially portable, which keeps
/// the experiment harness byte-stable across platforms.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Derives an independent child generator, e.g. one per site or per
    /// simulated subject, so adding a consumer never perturbs the others.
    pub fn fork(&mut self, tag: u64) -> DetRng {
        let mix = self.next_u64() ^ tag.wrapping_mul(0xA24B_AED4_963E_E407);
        DetRng::new(mix)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (Lemire); the tiny modulo
        // bias is irrelevant at the bounds used in this workspace.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range must be non-empty");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }

    /// Samples an index from a discrete weight vector.
    ///
    /// Used by the Likert response model, where each answer category has a
    /// target probability. Panics if weights are empty or sum to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weights must be non-empty with positive sum"
        );
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= *w;
        }
        weights.len() - 1
    }

    /// Fills a byte buffer with pseudo-random data (synthetic object bodies).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = DetRng::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut r = DetRng::new(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match r.range_inclusive(3, 5) {
                3 => saw_lo = true,
                5 => saw_hi = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(11);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let mut r = DetRng::new(5);
        let weights = [0.0, 0.25, 0.75];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[r.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let frac2 = counts[2] as f64 / 20_000.0;
        assert!((frac2 - 0.75).abs() < 0.02, "frac2 = {frac2}");
    }

    #[test]
    fn forked_generators_are_independent() {
        let mut root = DetRng::new(100);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = DetRng::new(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
