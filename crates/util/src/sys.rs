//! Thin, libc-free Linux syscall shims for event-driven I/O.
//!
//! The workspace is dependency-free beyond std by design, so the epoll
//! readiness API the event-driven server backend needs is reached the same
//! way libc would reach it: raw `syscall` instructions via inline assembly,
//! with the handful of constants and the `epoll_event` layout transcribed
//! from the kernel ABI. Only the calls the server actually uses are
//! wrapped — epoll lifecycle, `close(2)`, `setsockopt(2)` for the
//! socket-buffer shrinking the partial-write tests rely on and for
//! `SO_REUSEPORT` (the alternative acceptor strategy of the sharded epoll
//! backend), and `prlimit64(2)` so benches can read the fd ceiling that
//! bounds the connection-hold phase.
//!
//! The test-only fault-injection lever lives in [`crate::fault`] and is
//! re-exported here as [`fault`]: `epoll_ctl` consults it in this module,
//! and the server backends hook `accept`/`write` at their call sites.
//!
//! Everything here is Linux-only (x86_64 and aarch64); the module is
//! compiled out elsewhere and callers fall back to the thread-pool server
//! backend.

pub use crate::fault;

use std::io;
use std::os::fd::RawFd;

// ---------------------------------------------------------------------------
// Raw syscall entry points (per-architecture numbers + calling convention).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const CLOSE: usize = 3;
    pub const SETSOCKOPT: usize = 54;
    pub const GETSOCKOPT: usize = 55;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EPOLL_CREATE1: usize = 291;
    pub const PRLIMIT64: usize = 302;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const CLOSE: usize = 57;
    pub const SETSOCKOPT: usize = 208;
    pub const GETSOCKOPT: usize = 209;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EPOLL_CREATE1: usize = 20;
    pub const PRLIMIT64: usize = 261;
}

/// One raw syscall with up to six arguments. The kernel returns a negative
/// errno in-band; [`check`] converts that to `io::Error`.
///
/// # Safety
/// The caller must uphold the kernel contract for syscall `n`: pointer
/// arguments must be valid for the access the kernel performs.
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") n as isize => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        in("r8") a5,
        in("r9") a6,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack, preserves_flags)
    );
    ret
}

/// One raw syscall with up to six arguments (aarch64 `svc 0` convention).
///
/// # Safety
/// See the x86_64 variant.
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(
    n: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        in("x8") n,
        inlateout("x0") a1 => ret,
        in("x1") a2,
        in("x2") a3,
        in("x3") a4,
        in("x4") a5,
        in("x5") a6,
        options(nostack, preserves_flags)
    );
    ret
}

/// Maps the kernel's in-band negative-errno return to `io::Result`.
fn check(ret: isize) -> io::Result<usize> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

// ---------------------------------------------------------------------------
// epoll
// ---------------------------------------------------------------------------

/// `EPOLLIN`: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR`: error condition (always reported, need not be requested).
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`: hang-up (always reported, need not be requested).
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLLRDHUP`: peer shut down the writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0o2000000;

/// The kernel's `struct epoll_event`. Packed on x86_64 (the one ABI where
/// the 12-byte layout survives for compatibility), naturally aligned
/// elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    events: u32,
    data: u64,
}

impl EpollEvent {
    /// An empty event, for pre-sizing `wait` buffers.
    pub fn zeroed() -> EpollEvent {
        EpollEvent::default()
    }

    /// The readiness bits the kernel reported.
    pub fn events(&self) -> u32 {
        // By-value copy out of the (possibly packed) struct.
        self.events
    }

    /// The caller-chosen token registered with the fd.
    pub fn token(&self) -> u64 {
        self.data
    }
}

/// An epoll instance: the readiness multiplexer behind the event-driven
/// server backend. Registration associates a caller-chosen `u64` token with
/// each fd; `wait` reports `(token, readiness)` pairs.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Epoll> {
        let fd = check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Epoll { fd: fd as RawFd })
    }

    fn ctl(&self, op: usize, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        // Test-only: an armed fault fails the registration before the
        // kernel sees it (no-op in production builds).
        if let Some(e) = fault::take(fault::Op::EpollCtl) {
            return Err(e);
        }
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        let ev_ptr = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        check(unsafe {
            syscall6(
                nr::EPOLL_CTL,
                self.fd as usize,
                op,
                fd as usize,
                ev_ptr as usize,
                0,
                0,
            )
        })?;
        Ok(())
    }

    /// Registers `fd` for the `interest` readiness bits under `token`.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Changes the readiness bits (and token) of an already registered fd.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` (`-1` = forever) for readiness, filling
    /// `events`; returns how many entries are valid. A signal interruption
    /// reports zero events rather than an error.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let ret = unsafe {
            syscall6(
                nr::EPOLL_PWAIT,
                self.fd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0, // sigmask: NULL — plain epoll_wait semantics
                0,
            )
        };
        match check(ret) {
            Ok(n) => Ok(n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = unsafe { syscall6(nr::CLOSE, self.fd as usize, 0, 0, 0, 0, 0) };
    }
}

// ---------------------------------------------------------------------------
// Socket-buffer sizing (partial-write testing)
// ---------------------------------------------------------------------------

const SOL_SOCKET: usize = 1;
const SO_SNDBUF: usize = 7;
const SO_RCVBUF: usize = 8;
const SO_REUSEPORT: usize = 15;

fn set_sock_int(fd: RawFd, level: usize, name: usize, value: i32) -> io::Result<()> {
    let v = value;
    check(unsafe {
        syscall6(
            nr::SETSOCKOPT,
            fd as usize,
            level,
            name,
            &v as *const i32 as usize,
            std::mem::size_of::<i32>(),
            0,
        )
    })?;
    Ok(())
}

fn get_sock_int(fd: RawFd, level: usize, name: usize) -> io::Result<i32> {
    let mut v: i32 = 0;
    let mut len: u32 = std::mem::size_of::<i32>() as u32;
    check(unsafe {
        syscall6(
            nr::GETSOCKOPT,
            fd as usize,
            level,
            name,
            &mut v as *mut i32 as usize,
            &mut len as *mut u32 as usize,
            0,
        )
    })?;
    Ok(v)
}

/// Shrinks (or grows) a socket's kernel send buffer — the lever the
/// backend-equivalence tests pull to force partial writes on the server
/// side. The kernel doubles the value internally and clamps to its floor.
pub fn set_send_buffer(fd: RawFd, bytes: i32) -> io::Result<()> {
    set_sock_int(fd, SOL_SOCKET, SO_SNDBUF, bytes)
}

/// Shrinks (or grows) a socket's kernel receive buffer (clamped likewise).
pub fn set_recv_buffer(fd: RawFd, bytes: i32) -> io::Result<()> {
    set_sock_int(fd, SOL_SOCKET, SO_RCVBUF, bytes)
}

/// Reads back the effective send-buffer size.
pub fn send_buffer(fd: RawFd) -> io::Result<i32> {
    get_sock_int(fd, SOL_SOCKET, SO_SNDBUF)
}

// ---------------------------------------------------------------------------
// SO_REUSEPORT + resource limits (sharded-backend support)
// ---------------------------------------------------------------------------

/// Enables/disables `SO_REUSEPORT` on a socket. This is the lever for the
/// sharded epoll backend's alternative acceptor strategy (per-loop
/// listeners sharing one port, each with its own kernel accept queue);
/// the default strategy — a single acceptor round-robining fds across
/// loops — needs no socket option, so this is offered, not required.
/// Note the option must be set **before** `bind(2)` to share a port.
pub fn set_reuseport(fd: RawFd, on: bool) -> io::Result<()> {
    set_sock_int(fd, SOL_SOCKET, SO_REUSEPORT, i32::from(on))
}

/// Reads back whether `SO_REUSEPORT` is set.
pub fn reuseport(fd: RawFd) -> io::Result<bool> {
    get_sock_int(fd, SOL_SOCKET, SO_REUSEPORT).map(|v| v != 0)
}

const RLIMIT_NOFILE: usize = 7;

/// The kernel's `struct rlimit64`.
#[repr(C)]
struct Rlimit64 {
    cur: u64,
    max: u64,
}

/// `(soft, hard)` limit on open fds (`RLIMIT_NOFILE`), via `prlimit64(2)`
/// on the calling process. The epoll backends' connection ceiling is this
/// soft limit; the `scale1` connection-hold phase reads it to size its
/// target within what the environment actually allows.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    let mut lim = Rlimit64 { cur: 0, max: 0 };
    check(unsafe {
        syscall6(
            nr::PRLIMIT64,
            0, // pid 0: the calling process
            RLIMIT_NOFILE,
            0, // new_limit: NULL — read only
            &mut lim as *mut Rlimit64 as usize,
            0,
            0,
        )
    })?;
    Ok((lim.cur, lim.max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readable_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(listener.as_raw_fd(), EPOLLIN, 7).unwrap();

        // Nothing pending yet: a zero-timeout wait reports no events.
        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        // A pending connection makes the listener readable.
        let _client = TcpStream::connect(addr).unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 7);
        assert!(events[0].events() & EPOLLIN != 0);
    }

    #[test]
    fn epoll_modify_and_delete() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (a, _b) = {
            let c = TcpStream::connect(addr).unwrap();
            let (s, _) = listener.accept().unwrap();
            (s, c)
        };
        let ep = Epoll::new().unwrap();
        // A connected socket with room in its send buffer is writable.
        ep.add(a.as_raw_fd(), EPOLLOUT, 1).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(events[0].events() & EPOLLOUT != 0);
        // Interest swapped to read-only: no longer reported writable.
        ep.modify(a.as_raw_fd(), EPOLLIN, 2).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        // Deleted: silent even when data arrives.
        ep.delete(a.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        // Double-delete is the caller's bug and surfaces as ENOENT.
        assert!(ep.delete(a.as_raw_fd()).is_err());
    }

    #[test]
    fn reuseport_roundtrips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let fd = listener.as_raw_fd();
        assert!(!reuseport(fd).unwrap(), "off by default");
        set_reuseport(fd, true).unwrap();
        assert!(reuseport(fd).unwrap());
        set_reuseport(fd, false).unwrap();
        assert!(!reuseport(fd).unwrap());
    }

    #[test]
    fn nofile_limit_is_sane() {
        let (soft, hard) = nofile_limit().unwrap();
        // Any Linux process has at least stdin/stdout/stderr headroom.
        assert!(soft >= 8, "soft limit {soft}");
        assert!(hard >= soft, "hard {hard} < soft {soft}");
    }

    #[test]
    fn send_buffer_shrinks() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let default = send_buffer(server.as_raw_fd()).unwrap();
        set_send_buffer(server.as_raw_fd(), 4096).unwrap();
        let shrunk = send_buffer(server.as_raw_fd()).unwrap();
        assert!(shrunk < default, "shrunk {shrunk} vs default {default}");
        drop(client);
    }

    #[test]
    fn epoll_token_roundtrips_large_values() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let ep = Epoll::new().unwrap();
        let token = u64::MAX - 1;
        ep.add(listener.as_raw_fd(), EPOLLIN, token).unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), token);
    }

    #[test]
    fn epoll_sees_written_bytes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN, 3).unwrap();
        client.write_all(b"ping").unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let mut buf = [0u8; 8];
        let got = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"ping");
    }
}
