//! The Fig.-4 `newContent` XML wire format.
//!
//! RCB-Agent answers Ajax polling requests with an `application/xml`
//! document shaped exactly like the paper's Figure 4:
//!
//! ```xml
//! <?xml version='1.0' encoding='utf-8'?>
//! <newContent>
//!   <docTime>documentTimestamp</docTime>
//!   <docContent>
//!     <docHead>
//!       <hChild1><![CDATA[escape(hData1)]]></hChild1>
//!       ...
//!     </docHead>
//!     <docBody><![CDATA[escape(bData)]]></docBody>
//!     <!-- or, for frame pages: -->
//!     <docFrameSet><![CDATA[escape(fData)]]></docFrameSet>
//!     <docNoFrames><![CDATA[escape(nData)]]></docNoFrames>
//!   </docContent>
//!   <userActions>userActionData</userActions>
//! </newContent>
//! ```
//!
//! Each payload is the JavaScript-`escape`d encoding of an *attribute
//! name-value list plus innerHTML value*, wrapped in CDATA so that the
//! response "can be precisely contained in an application/xml message"
//! (§4.1.2). This crate provides the typed model ([`NewContent`]), the
//! writer, and the reader (a small real XML scanner, since Ajax-Snippet
//! receives this over the wire and must parse it).

pub mod model;
pub mod reader;
pub mod scanner;
pub mod writer;

pub use model::{DeltaContent, ElementPayload, NewContent, PollPayload, TopLevel};
pub use reader::{parse_delta_content, parse_new_content, parse_poll_payload};
pub use writer::{write_delta_content, write_new_content};
