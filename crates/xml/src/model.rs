//! Typed model of the newContent response.

use rcb_util::{RcbError, Result};

/// One transported element: its tag, attribute name-value list, and
/// innerHTML — the unit Figure 4 carries per `hChildN`/`docBody`/... slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementPayload {
    /// Element tag name (`title`, `style`, `body`, `frameset`, ...).
    pub tag: String,
    /// Attribute name-value pairs in document order.
    pub attrs: Vec<(String, String)>,
    /// The element's innerHTML serialization.
    pub inner_html: String,
}

impl ElementPayload {
    /// Builds a payload with no attributes.
    pub fn new(tag: impl Into<String>, inner_html: impl Into<String>) -> Self {
        ElementPayload {
            tag: tag.into(),
            attrs: Vec::new(),
            inner_html: inner_html.into(),
        }
    }

    /// Encodes the payload into the paper's "attribute name-value list and
    /// innerHTML value" string form: `tag\u{1}name=value\u{2}...\u{1}inner`.
    ///
    /// The paper leaves the intra-CDATA framing unspecified (it is internal
    /// to RCB); this encoding uses control separators that cannot appear in
    /// HTML text, then the whole string is JS-escaped, so framing survives
    /// transport unambiguously.
    pub fn encode(&self) -> String {
        let mut s = String::with_capacity(self.inner_html.len() + 64);
        s.push_str(&self.tag);
        s.push('\u{1}');
        for (i, (name, value)) in self.attrs.iter().enumerate() {
            if i > 0 {
                s.push('\u{2}');
            }
            s.push_str(name);
            s.push('=');
            s.push_str(value);
        }
        s.push('\u{1}');
        s.push_str(&self.inner_html);
        s
    }

    /// Appends `escape(self.encode())` to `out` in a single pass, with no
    /// intermediate string: every component is JS-escaped straight into
    /// the output buffer (escaping is character-wise, so escaping the
    /// pieces equals escaping the concatenation). The separators escape to
    /// fixed sequences: `\u{1}` → `%01`, `\u{2}` → `%02`, `=` → `%3D`.
    ///
    /// This is the hot half of Fig.-4 XML assembly; the two-step
    /// `escape(&payload.encode())` remains as the reference the writer
    /// tests equate against.
    pub fn encode_escaped_into(&self, out: &mut String) {
        use rcb_url::jsescape::escape_into;
        out.reserve(self.inner_html.len() + 64);
        escape_into(&self.tag, out);
        out.push_str("%01");
        for (i, (name, value)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push_str("%02");
            }
            escape_into(name, out);
            out.push_str("%3D");
            escape_into(value, out);
        }
        out.push_str("%01");
        escape_into(&self.inner_html, out);
    }

    /// Decodes the [`ElementPayload::encode`] form.
    pub fn decode(s: &str) -> Result<ElementPayload> {
        let mut parts = s.splitn(3, '\u{1}');
        let tag = parts
            .next()
            .filter(|t| !t.is_empty())
            .ok_or_else(|| RcbError::parse("newContent", "missing tag"))?;
        let attrs_raw = parts
            .next()
            .ok_or_else(|| RcbError::parse("newContent", "missing attribute list"))?;
        let inner_html = parts
            .next()
            .ok_or_else(|| RcbError::parse("newContent", "missing innerHTML"))?;
        let attrs = if attrs_raw.is_empty() {
            Vec::new()
        } else {
            attrs_raw
                .split('\u{2}')
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => Ok((k.to_string(), v.to_string())),
                    None => Err(RcbError::parse(
                        "newContent",
                        format!("malformed attribute {kv:?}"),
                    )),
                })
                .collect::<Result<Vec<_>>>()?
        };
        Ok(ElementPayload {
            tag: tag.to_string(),
            attrs,
            inner_html: inner_html.to_string(),
        })
    }
}

/// The top-level (non-head) content of a page: either a body element, or a
/// frameset with an optional noframes fallback (paper §4.1.2: "their
/// top-level children may include a head element, a frameset element, and
/// probably a noframes element").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopLevel {
    /// Regular page: one `<body>`.
    Body(ElementPayload),
    /// Frame page: `<frameset>` plus optional `<noframes>`.
    Frames {
        /// The frameset element.
        frameset: ElementPayload,
        /// Optional noframes fallback.
        noframes: Option<ElementPayload>,
    },
}

/// A complete newContent response (Fig. 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewContent {
    /// Document timestamp: milliseconds since the Unix epoch (§4.1.1).
    pub doc_time: u64,
    /// Children of the document head, in DOM order.
    pub head_children: Vec<ElementPayload>,
    /// The page's top-level content.
    pub top: TopLevel,
    /// Additional browsing-action data (mouse-pointer movement etc.),
    /// already encoded by the action codec in `rcb-core`.
    pub user_actions: String,
}

/// A delta update between two published generations (`deltaContent`).
///
/// Mirrors [`NewContent`] but carries only the components that changed
/// since the generation stamped `from_doc_time`: a `None` slot means
/// "unchanged — keep what you have". The paper's Fig.-4 layout is reused
/// verbatim for the present slots, so a delta with both slots populated
/// is byte-equivalent in payload encoding to the full document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaContent {
    /// Document timestamp of the generation this delta produces.
    pub doc_time: u64,
    /// Document timestamp of the base generation the receiver must
    /// already hold for this delta to apply.
    pub from_doc_time: u64,
    /// Replacement head children, or `None` when the head is unchanged.
    pub head_children: Option<Vec<ElementPayload>>,
    /// Replacement top-level content, or `None` when unchanged.
    pub top: Option<TopLevel>,
    /// Additional browsing-action data, as in [`NewContent`].
    pub user_actions: String,
}

/// Either poll-reply document: the full Fig.-4 snapshot or a delta.
///
/// The participant can receive both on one connection (full XML on an
/// immediate reply or a ring miss, delta on a woken long-poll), so the
/// response parser dispatches on the root element name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PollPayload {
    /// A complete `newContent` snapshot.
    Full(NewContent),
    /// A `deltaContent` update against an acked base generation.
    Delta(DeltaContent),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_encode_decode_roundtrip() {
        let p = ElementPayload {
            tag: "body".into(),
            attrs: vec![
                ("class".into(), "home page".into()),
                ("onload".into(), "init()".into()),
            ],
            inner_html: "<div id=\"x\">hello &amp; bye</div>".into(),
        };
        assert_eq!(ElementPayload::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn payload_without_attrs() {
        let p = ElementPayload::new("title", "Google");
        let d = ElementPayload::decode(&p.encode()).unwrap();
        assert_eq!(d, p);
        assert!(d.attrs.is_empty());
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(ElementPayload::decode("").is_err());
        assert!(ElementPayload::decode("tagonly").is_err());
        assert!(ElementPayload::decode("t\u{1}badattr\u{1}x").is_err());
    }

    #[test]
    fn inner_html_may_contain_separator_free_controls() {
        let p = ElementPayload::new("style", "a>b { color: red; }\n/* ]]> inside */");
        assert_eq!(ElementPayload::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn streaming_escaped_encode_matches_two_step_reference() {
        let payloads = [
            ElementPayload::new("title", "Example <Home> & more"),
            ElementPayload {
                tag: "body".into(),
                attrs: vec![
                    ("class".into(), "home page".into()),
                    ("onload".into(), "init('café', 中)".into()),
                ],
                inner_html: "<div id=\"x\">hello 😀 =%01 literal</div>".into(),
            },
            ElementPayload::new("style", ""),
        ];
        for p in &payloads {
            let mut streamed = String::from("seed");
            p.encode_escaped_into(&mut streamed);
            let reference = format!("seed{}", rcb_url::jsescape::escape(&p.encode()));
            assert_eq!(streamed, reference, "payload {:?}", p.tag);
        }
    }
}
