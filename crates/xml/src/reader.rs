//! Parses a Figure-4 document back into a [`NewContent`].
//!
//! This is the participant-side half: Ajax-Snippet's response processing
//! (paper Fig. 5) starts from the `responseXML` document, which this module
//! reconstructs from raw bytes.

use rcb_url::jsescape::unescape;
use rcb_util::{RcbError, Result};

use crate::model::{ElementPayload, NewContent, TopLevel};
use crate::scanner::{parse_document, XmlElement};

/// Parses the `application/xml` body of a polling response.
///
/// Returns `Ok(None)` for an empty body — the agent's "no new content"
/// signal (§4.1.1) — and `Ok(Some(..))` for a full newContent document.
pub fn parse_new_content(body: &str) -> Result<Option<NewContent>> {
    if body.trim().is_empty() {
        return Ok(None);
    }
    let root = parse_document(body)?;
    if root.name != "newContent" {
        return Err(RcbError::parse(
            "newContent",
            format!("unexpected root element {:?}", root.name),
        ));
    }
    let doc_time: u64 = root
        .child("docTime")
        .ok_or_else(|| RcbError::parse("newContent", "missing docTime"))?
        .text()
        .trim()
        .parse()
        .map_err(|_| RcbError::parse("newContent", "docTime is not an integer"))?;
    let content = root
        .child("docContent")
        .ok_or_else(|| RcbError::parse("newContent", "missing docContent"))?;
    let head = content
        .child("docHead")
        .ok_or_else(|| RcbError::parse("newContent", "missing docHead"))?;
    let mut head_children = Vec::new();
    for (i, child) in head.child_elements().enumerate() {
        let expected = format!("hChild{}", i + 1);
        if child.name != expected {
            return Err(RcbError::parse(
                "newContent",
                format!("expected {expected}, found {}", child.name),
            ));
        }
        head_children.push(decode_payload(child)?);
    }
    let top = if let Some(body_el) = content.child("docBody") {
        TopLevel::Body(decode_payload(body_el)?)
    } else if let Some(fs) = content.child("docFrameSet") {
        let noframes = content
            .child("docNoFrames")
            .map(decode_payload)
            .transpose()?;
        TopLevel::Frames {
            frameset: decode_payload(fs)?,
            noframes,
        }
    } else {
        return Err(RcbError::parse(
            "newContent",
            "docContent carries neither docBody nor docFrameSet",
        ));
    };
    let user_actions = root
        .child("userActions")
        .map(|e| e.text())
        .unwrap_or_default();
    Ok(Some(NewContent {
        doc_time,
        head_children,
        top,
        user_actions,
    }))
}

fn decode_payload(el: &XmlElement) -> Result<ElementPayload> {
    ElementPayload::decode(&unescape(&el.text()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_new_content;

    fn sample(top: TopLevel) -> NewContent {
        NewContent {
            doc_time: 1_244_937_600_555,
            head_children: vec![
                ElementPayload::new("title", "cnn.com — breaking <news> & more"),
                ElementPayload {
                    tag: "script".into(),
                    attrs: vec![("type".into(), "text/javascript".into())],
                    inner_html: "function f(a,b){return a<b && b>0;}".into(),
                },
            ],
            top,
            user_actions: "mouse:10,20".into(),
        }
    }

    #[test]
    fn roundtrip_body_page() {
        let nc = sample(TopLevel::Body(ElementPayload {
            tag: "body".into(),
            attrs: vec![("onload".into(), "boot()".into())],
            inner_html: "<p>café 地图 😀</p><!-- c --><form action=\"/s\"></form>".into(),
        }));
        let xml = write_new_content(&nc);
        let parsed = parse_new_content(&xml).unwrap().unwrap();
        assert_eq!(parsed, nc);
    }

    #[test]
    fn roundtrip_frames_page() {
        let nc = sample(TopLevel::Frames {
            frameset: ElementPayload {
                tag: "frameset".into(),
                attrs: vec![("rows".into(), "20%,80%".into())],
                inner_html: "<frame src=\"/top\"/><frame src=\"/main\"/>".into(),
            },
            noframes: None,
        });
        let parsed = parse_new_content(&write_new_content(&nc)).unwrap().unwrap();
        assert_eq!(parsed, nc);
    }

    #[test]
    fn empty_body_means_no_new_content() {
        assert_eq!(parse_new_content("").unwrap(), None);
        assert_eq!(parse_new_content("  \n ").unwrap(), None);
    }

    #[test]
    fn rejects_wrong_root_or_missing_parts() {
        assert!(parse_new_content("<other/>").is_err());
        assert!(parse_new_content("<newContent></newContent>").is_err());
        assert!(parse_new_content(
            "<newContent><docTime>zz</docTime><docContent><docHead></docHead><docBody><![CDATA[b\u{1}\u{1}]]></docBody></docContent></newContent>"
        )
        .is_err());
    }

    #[test]
    fn rejects_out_of_order_head_children() {
        let xml = "<newContent><docTime>1</docTime><docContent><docHead>\
                   <hChild2><![CDATA[title%01%01x]]></hChild2></docHead>\
                   <docBody><![CDATA[body%01%01y]]></docBody></docContent></newContent>";
        assert!(parse_new_content(xml).is_err());
    }

    #[test]
    fn cdata_hostile_inner_html_survives() {
        // innerHTML containing a literal CDATA end marker and XML syntax.
        let nc = sample(TopLevel::Body(ElementPayload::new(
            "body",
            "x ]]> y <![CDATA[ z & <tag attr=\"v\">",
        )));
        let parsed = parse_new_content(&write_new_content(&nc)).unwrap().unwrap();
        assert_eq!(parsed, nc);
    }
}
