//! Parses a Figure-4 document back into a [`NewContent`].
//!
//! This is the participant-side half: Ajax-Snippet's response processing
//! (paper Fig. 5) starts from the `responseXML` document, which this module
//! reconstructs from raw bytes.

use rcb_url::jsescape::unescape;
use rcb_util::{RcbError, Result};

use crate::model::{DeltaContent, ElementPayload, NewContent, PollPayload, TopLevel};
use crate::scanner::{parse_document, XmlElement};

/// Parses the `application/xml` body of a polling response.
///
/// Returns `Ok(None)` for an empty body — the agent's "no new content"
/// signal (§4.1.1) — and `Ok(Some(..))` for a full newContent document.
pub fn parse_new_content(body: &str) -> Result<Option<NewContent>> {
    if body.trim().is_empty() {
        return Ok(None);
    }
    let root = parse_document(body)?;
    if root.name != "newContent" {
        return Err(RcbError::parse(
            "newContent",
            format!("unexpected root element {:?}", root.name),
        ));
    }
    new_content_from_root(&root).map(Some)
}

/// Parses a `deltaContent` document (the woken long-poll reply when the
/// acked generation is still in the server's delta ring).
///
/// Same empty-body convention as [`parse_new_content`].
pub fn parse_delta_content(body: &str) -> Result<Option<DeltaContent>> {
    if body.trim().is_empty() {
        return Ok(None);
    }
    let root = parse_document(body)?;
    if root.name != "deltaContent" {
        return Err(RcbError::parse(
            "deltaContent",
            format!("unexpected root element {:?}", root.name),
        ));
    }
    delta_content_from_root(&root).map(Some)
}

/// Parses either poll-reply document, dispatching on the root element:
/// `newContent` → [`PollPayload::Full`], `deltaContent` →
/// [`PollPayload::Delta`]. Empty body still means "no new content".
pub fn parse_poll_payload(body: &str) -> Result<Option<PollPayload>> {
    if body.trim().is_empty() {
        return Ok(None);
    }
    let root = parse_document(body)?;
    match root.name.as_str() {
        "newContent" => new_content_from_root(&root).map(|nc| Some(PollPayload::Full(nc))),
        "deltaContent" => delta_content_from_root(&root).map(|dc| Some(PollPayload::Delta(dc))),
        other => Err(RcbError::parse(
            "pollPayload",
            format!("unexpected root element {other:?}"),
        )),
    }
}

fn new_content_from_root(root: &XmlElement) -> Result<NewContent> {
    let doc_time = parse_doc_time(root, "newContent", "docTime")?;
    let content = root
        .child("docContent")
        .ok_or_else(|| RcbError::parse("newContent", "missing docContent"))?;
    let head = content
        .child("docHead")
        .ok_or_else(|| RcbError::parse("newContent", "missing docHead"))?;
    let head_children = parse_head_children(head)?;
    let top = parse_top(content)?.ok_or_else(|| {
        RcbError::parse(
            "newContent",
            "docContent carries neither docBody nor docFrameSet",
        )
    })?;
    let user_actions = root
        .child("userActions")
        .map(|e| e.text())
        .unwrap_or_default();
    Ok(NewContent {
        doc_time,
        head_children,
        top,
        user_actions,
    })
}

fn delta_content_from_root(root: &XmlElement) -> Result<DeltaContent> {
    let doc_time = parse_doc_time(root, "deltaContent", "docTime")?;
    let from_doc_time = parse_doc_time(root, "deltaContent", "fromDocTime")?;
    let content = root
        .child("docContent")
        .ok_or_else(|| RcbError::parse("deltaContent", "missing docContent"))?;
    // Unlike the full document, an absent docHead means "head unchanged".
    let head_children = content
        .child("docHead")
        .map(parse_head_children)
        .transpose()?;
    let top = parse_top(content)?;
    let user_actions = root
        .child("userActions")
        .map(|e| e.text())
        .unwrap_or_default();
    Ok(DeltaContent {
        doc_time,
        from_doc_time,
        head_children,
        top,
        user_actions,
    })
}

fn parse_doc_time(root: &XmlElement, what: &'static str, name: &str) -> Result<u64> {
    root.child(name)
        .ok_or_else(|| RcbError::parse(what, format!("missing {name}")))?
        .text()
        .trim()
        .parse()
        .map_err(|_| RcbError::parse(what, format!("{name} is not an integer")))
}

fn parse_head_children(head: &XmlElement) -> Result<Vec<ElementPayload>> {
    let mut head_children = Vec::new();
    for (i, child) in head.child_elements().enumerate() {
        let expected = format!("hChild{}", i + 1);
        if child.name != expected {
            return Err(RcbError::parse(
                "newContent",
                format!("expected {expected}, found {}", child.name),
            ));
        }
        head_children.push(decode_payload(child)?);
    }
    Ok(head_children)
}

/// Parses the top-level slot of a `docContent` section; `Ok(None)` when
/// neither `docBody` nor `docFrameSet` is present (legal only in deltas).
fn parse_top(content: &XmlElement) -> Result<Option<TopLevel>> {
    if let Some(body_el) = content.child("docBody") {
        Ok(Some(TopLevel::Body(decode_payload(body_el)?)))
    } else if let Some(fs) = content.child("docFrameSet") {
        let noframes = content
            .child("docNoFrames")
            .map(decode_payload)
            .transpose()?;
        Ok(Some(TopLevel::Frames {
            frameset: decode_payload(fs)?,
            noframes,
        }))
    } else {
        Ok(None)
    }
}

fn decode_payload(el: &XmlElement) -> Result<ElementPayload> {
    ElementPayload::decode(&unescape(&el.text()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::write_new_content;

    fn sample(top: TopLevel) -> NewContent {
        NewContent {
            doc_time: 1_244_937_600_555,
            head_children: vec![
                ElementPayload::new("title", "cnn.com — breaking <news> & more"),
                ElementPayload {
                    tag: "script".into(),
                    attrs: vec![("type".into(), "text/javascript".into())],
                    inner_html: "function f(a,b){return a<b && b>0;}".into(),
                },
            ],
            top,
            user_actions: "mouse:10,20".into(),
        }
    }

    #[test]
    fn roundtrip_body_page() {
        let nc = sample(TopLevel::Body(ElementPayload {
            tag: "body".into(),
            attrs: vec![("onload".into(), "boot()".into())],
            inner_html: "<p>café 地图 😀</p><!-- c --><form action=\"/s\"></form>".into(),
        }));
        let xml = write_new_content(&nc);
        let parsed = parse_new_content(&xml).unwrap().unwrap();
        assert_eq!(parsed, nc);
    }

    #[test]
    fn roundtrip_frames_page() {
        let nc = sample(TopLevel::Frames {
            frameset: ElementPayload {
                tag: "frameset".into(),
                attrs: vec![("rows".into(), "20%,80%".into())],
                inner_html: "<frame src=\"/top\"/><frame src=\"/main\"/>".into(),
            },
            noframes: None,
        });
        let parsed = parse_new_content(&write_new_content(&nc)).unwrap().unwrap();
        assert_eq!(parsed, nc);
    }

    #[test]
    fn empty_body_means_no_new_content() {
        assert_eq!(parse_new_content("").unwrap(), None);
        assert_eq!(parse_new_content("  \n ").unwrap(), None);
    }

    #[test]
    fn rejects_wrong_root_or_missing_parts() {
        assert!(parse_new_content("<other/>").is_err());
        assert!(parse_new_content("<newContent></newContent>").is_err());
        assert!(parse_new_content(
            "<newContent><docTime>zz</docTime><docContent><docHead></docHead><docBody><![CDATA[b\u{1}\u{1}]]></docBody></docContent></newContent>"
        )
        .is_err());
    }

    #[test]
    fn rejects_out_of_order_head_children() {
        let xml = "<newContent><docTime>1</docTime><docContent><docHead>\
                   <hChild2><![CDATA[title%01%01x]]></hChild2></docHead>\
                   <docBody><![CDATA[body%01%01y]]></docBody></docContent></newContent>";
        assert!(parse_new_content(xml).is_err());
    }

    #[test]
    fn delta_roundtrip_all_slot_combinations() {
        use crate::writer::write_delta_content;
        let nc = sample(TopLevel::Body(ElementPayload::new("body", "<p>v2</p>")));
        let combos = [
            (Some(nc.head_children.clone()), Some(nc.top.clone())),
            (Some(nc.head_children.clone()), None),
            (None, Some(nc.top.clone())),
            (None, None),
        ];
        for (head_children, top) in combos {
            let dc = DeltaContent {
                doc_time: 42,
                from_doc_time: 41,
                head_children,
                top,
                user_actions: "mouse:1,2".into(),
            };
            let xml = write_delta_content(&dc);
            assert_eq!(parse_delta_content(&xml).unwrap().unwrap(), dc);
            assert_eq!(
                parse_poll_payload(&xml).unwrap().unwrap(),
                PollPayload::Delta(dc)
            );
        }
    }

    #[test]
    fn poll_payload_dispatches_on_root() {
        let nc = sample(TopLevel::Body(ElementPayload::new("body", "x")));
        let xml = write_new_content(&nc);
        assert_eq!(
            parse_poll_payload(&xml).unwrap().unwrap(),
            PollPayload::Full(nc)
        );
        assert_eq!(parse_poll_payload("").unwrap(), None);
        assert_eq!(parse_poll_payload(" \n").unwrap(), None);
        assert!(parse_poll_payload("<other/>").is_err());
    }

    #[test]
    fn delta_rejects_missing_from_doc_time() {
        let xml = "<deltaContent><docTime>1</docTime><docContent></docContent></deltaContent>";
        assert!(parse_delta_content(xml).is_err());
        // And the full parser still refuses a delta root.
        assert!(parse_new_content(
            "<deltaContent><docTime>1</docTime><fromDocTime>0</fromDocTime>\
             <docContent></docContent></deltaContent>"
        )
        .is_err());
    }

    #[test]
    fn cdata_hostile_inner_html_survives() {
        // innerHTML containing a literal CDATA end marker and XML syntax.
        let nc = sample(TopLevel::Body(ElementPayload::new(
            "body",
            "x ]]> y <![CDATA[ z & <tag attr=\"v\">",
        )));
        let parsed = parse_new_content(&write_new_content(&nc)).unwrap().unwrap();
        assert_eq!(parsed, nc);
    }
}
