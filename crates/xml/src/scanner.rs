//! A minimal XML scanner.
//!
//! Ajax-Snippet receives the newContent document as `responseXML`; on the
//! participant side we must actually parse the bytes that crossed the wire.
//! This scanner handles exactly what the format needs: the XML declaration,
//! elements with optional attributes, character data, CDATA sections, and
//! comments. It is not a general XML parser (no DTDs, namespaces, or
//! processing instructions beyond the declaration).

use rcb_util::{RcbError, Result};

/// A parsed XML element: name, attributes, and children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlElement {
    /// Element name.
    pub name: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Child nodes.
    pub children: Vec<XmlNode>,
}

/// A node in the parsed XML tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// A child element.
    Element(XmlElement),
    /// Character data (entity-decoded) or CDATA content (verbatim).
    Text(String),
}

impl XmlElement {
    /// Concatenated text content of this element (direct children only).
    pub fn text(&self) -> String {
        self.children
            .iter()
            .filter_map(|c| match c {
                XmlNode::Text(t) => Some(t.as_str()),
                XmlNode::Element(_) => None,
            })
            .collect()
    }

    /// First child element named `name`.
    pub fn child(&self, name: &str) -> Option<&XmlElement> {
        self.children.iter().find_map(|c| match c {
            XmlNode::Element(e) if e.name == name => Some(e),
            _ => None,
        })
    }

    /// All child elements, in order.
    pub fn child_elements(&self) -> impl Iterator<Item = &XmlElement> {
        self.children.iter().filter_map(|c| match c {
            XmlNode::Element(e) => Some(e),
            _ => None,
        })
    }
}

/// Parses a document and returns its root element.
pub fn parse_document(input: &str) -> Result<XmlElement> {
    let mut s = Scanner {
        bytes: input.as_bytes(),
        pos: 0,
    };
    s.skip_prolog()?;
    let root = s.parse_element()?;
    s.skip_whitespace_and_comments()?;
    if s.pos != s.bytes.len() {
        return Err(RcbError::parse(
            "xml",
            "trailing content after root element",
        ));
    }
    Ok(root)
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn err(&self, detail: impl Into<String>) -> RcbError {
        RcbError::parse("xml", format!("{} at byte {}", detail.into(), self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) -> Result<()> {
        self.skip_whitespace();
        if self.starts_with("<?xml") {
            match self.bytes[self.pos..].windows(2).position(|w| w == b"?>") {
                Some(rel) => self.pos += rel + 2,
                None => return Err(self.err("unterminated XML declaration")),
            }
        }
        self.skip_whitespace_and_comments()
    }

    fn skip_whitespace_and_comments(&mut self) -> Result<()> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                match self.bytes[self.pos + 4..]
                    .windows(3)
                    .position(|w| w == b"-->")
                {
                    Some(rel) => self.pos += 4 + rel + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b':' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<XmlElement> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    if self.starts_with("/>") {
                        self.pos += 2;
                        return Ok(XmlElement {
                            name,
                            attrs,
                            children: Vec::new(),
                        });
                    }
                    return Err(self.err("stray '/' in tag"));
                }
                Some(_) => {
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' after attribute name"));
                    }
                    self.pos += 1;
                    self.skip_whitespace();
                    let quote = self
                        .peek()
                        .filter(|b| *b == b'"' || *b == b'\'')
                        .ok_or_else(|| self.err("expected quoted attribute value"))?;
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != quote) {
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.pos += 1;
                    attrs.push((attr_name, decode_entities(&raw)));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Children until matching close tag.
        let mut children = Vec::new();
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(format!("mismatched close tag {close:?} for {name:?}")));
                }
                self.skip_whitespace();
                if self.peek() != Some(b'>') {
                    return Err(self.err("malformed close tag"));
                }
                self.pos += 1;
                return Ok(XmlElement {
                    name,
                    attrs,
                    children,
                });
            }
            if self.starts_with("<![CDATA[") {
                let body_start = self.pos + 9;
                match self.bytes[body_start..]
                    .windows(3)
                    .position(|w| w == b"]]>")
                {
                    Some(rel) => {
                        let text =
                            String::from_utf8_lossy(&self.bytes[body_start..body_start + rel])
                                .into_owned();
                        children.push(XmlNode::Text(text));
                        self.pos = body_start + rel + 3;
                    }
                    None => return Err(self.err("unterminated CDATA section")),
                }
                continue;
            }
            if self.starts_with("<!--") {
                self.skip_whitespace_and_comments()?;
                continue;
            }
            match self.peek() {
                Some(b'<') => children.push(XmlNode::Element(self.parse_element()?)),
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'<') {
                        self.pos += 1;
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    // Whitespace-only runs between elements are formatting.
                    if !raw.trim().is_empty() {
                        children.push(XmlNode::Text(decode_entities(&raw)));
                    }
                }
                None => return Err(self.err(format!("unterminated element {name:?}"))),
            }
        }
    }
}

/// Decodes the five predefined XML entities plus decimal/hex references.
pub fn decode_entities(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        rest = &rest[idx..];
        let Some(semi) = rest.find(';') else {
            out.push('&');
            rest = &rest[1..];
            continue;
        };
        let entity = &rest[1..semi];
        let decoded = match entity {
            "amp" => Some('&'),
            "lt" => Some('<'),
            "gt" => Some('>'),
            "quot" => Some('"'),
            "apos" => Some('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                u32::from_str_radix(&entity[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
            }
            _ if entity.starts_with('#') => {
                entity[1..].parse::<u32>().ok().and_then(char::from_u32)
            }
            _ => None,
        };
        match decoded {
            Some(c) => {
                out.push(c);
                rest = &rest[semi + 1..];
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

/// Encodes text for inclusion as XML character data.
pub fn encode_text(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Encodes text for inclusion as a double-quoted attribute value.
pub fn encode_attr(s: &str) -> String {
    encode_text(s).replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_document() {
        let root = parse_document("<?xml version='1.0'?><a x=\"1\"><b>hi</b><c/></a>").unwrap();
        assert_eq!(root.name, "a");
        assert_eq!(root.attrs, vec![("x".to_string(), "1".to_string())]);
        assert_eq!(root.child("b").unwrap().text(), "hi");
        assert!(root.child("c").unwrap().children.is_empty());
        assert!(root.child("zz").is_none());
    }

    #[test]
    fn cdata_is_verbatim() {
        let root = parse_document("<r><![CDATA[a < b & c]]></r>").unwrap();
        assert_eq!(root.text(), "a < b & c");
    }

    #[test]
    fn entities_decode_in_text_and_attrs() {
        let root = parse_document("<r a=\"x &amp; &#65;\">1 &lt; 2 &#x41;</r>").unwrap();
        assert_eq!(root.attrs[0].1, "x & A");
        assert_eq!(root.text(), "1 < 2 A");
    }

    #[test]
    fn comments_are_skipped() {
        let root =
            parse_document("<!-- lead --><r><!-- for a page using body element --><b>x</b></r>")
                .unwrap();
        assert_eq!(root.child_elements().count(), 1);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_document("<a><b></a></b>").is_err());
        assert!(parse_document("<a>").is_err());
        assert!(parse_document("<a></a><b></b>").is_err());
        assert!(parse_document("<a x=1></a>").is_err());
        assert!(parse_document("plain").is_err());
        assert!(parse_document("<a><![CDATA[x]]</a>").is_err());
    }

    #[test]
    fn whitespace_between_elements_dropped() {
        let root = parse_document("<r>\n  <a/>\n  <b/>\n</r>").unwrap();
        assert_eq!(root.children.len(), 2);
    }

    #[test]
    fn encode_decode_entities_roundtrip() {
        let s = "a < b & \"c\" > 'd'";
        assert_eq!(decode_entities(&encode_attr(s)), s);
        assert_eq!(decode_entities("&bogus; &#xZZ; & x"), "&bogus; &#xZZ; & x");
    }
}
