//! Serializes a [`NewContent`] into the exact Figure-4 document, and a
//! [`DeltaContent`] into the same layout with unchanged slots omitted.

use std::fmt::Write as _;

use crate::model::{DeltaContent, ElementPayload, NewContent, TopLevel};
use crate::scanner::encode_text;

/// Writes the newContent document, matching the paper's Figure 4 layout
/// (XML declaration, `docTime`, `docContent` with per-head-child
/// `hChildN` CDATA sections, `docBody` or `docFrameSet`/`docNoFrames`,
/// and `userActions`).
///
/// Assembly is single-pass into one output buffer: each payload is
/// JS-escaped straight into it via
/// [`ElementPayload::encode_escaped_into`], with no per-child
/// `escape(&child.encode())` intermediates — the document is the only
/// allocation that grows.
pub fn write_new_content(nc: &NewContent) -> String {
    // Escaping inflates HTML payloads by roughly 2×; starting near the
    // final size keeps the single buffer from reallocating log(n) times.
    let payload_bytes: usize = nc.head_children.iter().map(payload_len).sum::<usize>()
        + match &nc.top {
            TopLevel::Body(b) => payload_len(b),
            TopLevel::Frames { frameset, noframes } => {
                payload_len(frameset) + noframes.as_ref().map_or(0, payload_len)
            }
        };
    let mut out = String::with_capacity(2 * payload_bytes + nc.user_actions.len() + 512);
    out.push_str("<?xml version='1.0' encoding='utf-8'?>\n");
    out.push_str("<newContent>\n");
    let _ = writeln!(out, "<docTime>{}</docTime>", nc.doc_time);
    out.push_str("<docContent>\n");
    write_head_into(&mut out, &nc.head_children);
    write_top_into(&mut out, &nc.top);
    out.push_str("</docContent>\n");
    out.push_str("<userActions>");
    out.push_str(&encode_text(&nc.user_actions));
    out.push_str("</userActions>\n");
    out.push_str("</newContent>\n");
    out
}

/// Writes the deltaContent document: same Fig.-4 framing as
/// [`write_new_content`] plus `fromDocTime`, with the `docHead` and
/// `docBody`/`docFrameSet` sections *omitted entirely* when that slot is
/// unchanged. A fully populated delta therefore differs from the full
/// document only in the root element name and the extra timestamp line.
pub fn write_delta_content(dc: &DeltaContent) -> String {
    let payload_bytes: usize = dc
        .head_children
        .as_ref()
        .map_or(0, |hc| hc.iter().map(payload_len).sum())
        + match &dc.top {
            Some(TopLevel::Body(b)) => payload_len(b),
            Some(TopLevel::Frames { frameset, noframes }) => {
                payload_len(frameset) + noframes.as_ref().map_or(0, payload_len)
            }
            None => 0,
        };
    let mut out = String::with_capacity(2 * payload_bytes + dc.user_actions.len() + 512);
    out.push_str("<?xml version='1.0' encoding='utf-8'?>\n");
    out.push_str("<deltaContent>\n");
    let _ = writeln!(out, "<docTime>{}</docTime>", dc.doc_time);
    let _ = writeln!(out, "<fromDocTime>{}</fromDocTime>", dc.from_doc_time);
    out.push_str("<docContent>\n");
    if let Some(head_children) = &dc.head_children {
        write_head_into(&mut out, head_children);
    }
    if let Some(top) = &dc.top {
        write_top_into(&mut out, top);
    }
    out.push_str("</docContent>\n");
    out.push_str("<userActions>");
    out.push_str(&encode_text(&dc.user_actions));
    out.push_str("</userActions>\n");
    out.push_str("</deltaContent>\n");
    out
}

fn write_head_into(out: &mut String, head_children: &[ElementPayload]) {
    out.push_str("<docHead>\n");
    for (i, child) in head_children.iter().enumerate() {
        let _ = write!(out, "<hChild{}><![CDATA[", i + 1);
        child.encode_escaped_into(out);
        let _ = writeln!(out, "]]></hChild{}>", i + 1);
    }
    out.push_str("</docHead>\n");
}

fn write_top_into(out: &mut String, top: &TopLevel) {
    match top {
        TopLevel::Body(body) => {
            out.push_str("<!-- for a page using body element -->\n");
            out.push_str("<docBody><![CDATA[");
            body.encode_escaped_into(out);
            out.push_str("]]></docBody>\n");
        }
        TopLevel::Frames { frameset, noframes } => {
            out.push_str("<!-- for a page using frames -->\n");
            out.push_str("<docFrameSet><![CDATA[");
            frameset.encode_escaped_into(out);
            out.push_str("]]></docFrameSet>\n");
            if let Some(nf) = noframes {
                out.push_str("<docNoFrames><![CDATA[");
                nf.encode_escaped_into(out);
                out.push_str("]]></docNoFrames>\n");
            }
        }
    }
}

fn payload_len(p: &ElementPayload) -> usize {
    p.inner_html.len() + p.tag.len() + 64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ElementPayload;

    fn sample() -> NewContent {
        NewContent {
            doc_time: 1_244_937_600_123,
            head_children: vec![
                ElementPayload::new("title", "Example Home"),
                ElementPayload {
                    tag: "style".into(),
                    attrs: vec![("type".into(), "text/css".into())],
                    inner_html: "body { margin: 0; }".into(),
                },
            ],
            top: TopLevel::Body(ElementPayload {
                tag: "body".into(),
                attrs: vec![("class".into(), "home".into())],
                inner_html: "<div id=\"main\">hello</div>".into(),
            }),
            user_actions: String::new(),
        }
    }

    #[test]
    fn output_matches_figure4_shape() {
        let xml = write_new_content(&sample());
        assert!(xml.starts_with("<?xml version='1.0' encoding='utf-8'?>"));
        assert!(xml.contains("<newContent>"));
        assert!(xml.contains("<docTime>1244937600123</docTime>"));
        assert!(xml.contains("<hChild1><![CDATA["));
        assert!(xml.contains("<hChild2><![CDATA["));
        assert!(xml.contains("<!-- for a page using body element -->"));
        assert!(xml.contains("<docBody><![CDATA["));
        assert!(xml.contains("<userActions></userActions>"));
        assert!(xml.trim_end().ends_with("</newContent>"));
    }

    #[test]
    fn frames_variant_uses_frameset_elements() {
        let nc = NewContent {
            doc_time: 1,
            head_children: vec![],
            top: TopLevel::Frames {
                frameset: ElementPayload {
                    tag: "frameset".into(),
                    attrs: vec![("cols".into(), "50%,50%".into())],
                    inner_html: "<frame src=\"a\"/><frame src=\"b\"/>".into(),
                },
                noframes: Some(ElementPayload::new("noframes", "frames required")),
            },
            user_actions: "none".into(),
        };
        let xml = write_new_content(&nc);
        assert!(xml.contains("<docFrameSet><![CDATA["));
        assert!(xml.contains("<docNoFrames><![CDATA["));
        assert!(!xml.contains("<docBody>"));
    }

    #[test]
    fn delta_omits_unchanged_slots() {
        let full = sample();
        let head_only = DeltaContent {
            doc_time: 10,
            from_doc_time: 9,
            head_children: Some(full.head_children.clone()),
            top: None,
            user_actions: String::new(),
        };
        let xml = write_delta_content(&head_only);
        assert!(xml.contains("<deltaContent>"));
        assert!(xml.contains("<docTime>10</docTime>"));
        assert!(xml.contains("<fromDocTime>9</fromDocTime>"));
        assert!(xml.contains("<docHead>"));
        assert!(!xml.contains("<docBody>"));
        assert!(!xml.contains("<docFrameSet>"));

        let top_only = DeltaContent {
            doc_time: 10,
            from_doc_time: 9,
            head_children: None,
            top: Some(full.top.clone()),
            user_actions: "a".into(),
        };
        let xml = write_delta_content(&top_only);
        assert!(!xml.contains("<docHead>"));
        assert!(xml.contains("<docBody><![CDATA["));
    }

    #[test]
    fn full_delta_reuses_figure4_section_bytes() {
        // A delta carrying both slots emits the exact section bytes of the
        // full document — only the root name and fromDocTime line differ.
        let nc = sample();
        let dc = DeltaContent {
            doc_time: nc.doc_time,
            from_doc_time: 7,
            head_children: Some(nc.head_children.clone()),
            top: Some(nc.top.clone()),
            user_actions: nc.user_actions.clone(),
        };
        let full = write_new_content(&nc);
        let delta = write_delta_content(&dc);
        let section = |xml: &str| {
            let s = xml.find("<docContent>").unwrap();
            let e = xml.find("</docContent>").unwrap();
            xml[s..e].to_string()
        };
        assert_eq!(section(&full), section(&delta));
    }

    #[test]
    fn payloads_are_js_escaped_inside_cdata() {
        let xml = write_new_content(&sample());
        // "<div" must appear escaped (%3Cdiv), never raw inside the CDATA.
        assert!(xml.contains("%3Cdiv"));
        // The raw CDATA terminator cannot be produced by escaped payloads.
        let inner = xml.split("<docBody><![CDATA[").nth(1).unwrap();
        let payload = inner.split("]]>").next().unwrap();
        assert!(!payload.contains('<'));
    }
}
