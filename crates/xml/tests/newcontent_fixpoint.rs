//! Read/write fixpoint tests for the Fig.-4 newContent wire format.
//!
//! The protocol's correctness hinges on `parse(write(nc)) == nc` for any
//! content the agent can produce — including content that tries to break
//! the XML framing — and on `write` being deterministic, so that
//! `write(parse(x)) == x` holds on the wire form.

use rcb_xml::{parse_new_content, write_new_content, ElementPayload, NewContent, TopLevel};

fn roundtrip(nc: &NewContent) {
    let xml = write_new_content(nc);
    let parsed = parse_new_content(&xml)
        .expect("well-formed")
        .expect("content present");
    assert_eq!(&parsed, nc, "value round-trip failed; wire: {xml}");
    // Writing the parsed value must reproduce the wire form exactly.
    assert_eq!(write_new_content(&parsed), xml, "wire fixpoint failed");
}

#[test]
fn body_page_roundtrips() {
    roundtrip(&NewContent {
        doc_time: 1_234_567_890_123,
        head_children: vec![
            ElementPayload::new("title", "Google"),
            ElementPayload {
                tag: "style".into(),
                attrs: vec![("type".into(), "text/css".into())],
                inner_html: "body { margin: 0; }".into(),
            },
        ],
        top: TopLevel::Body(ElementPayload {
            tag: "body".into(),
            attrs: vec![
                ("class".into(), "home".into()),
                ("onload".into(), "init()".into()),
            ],
            inner_html: "<div id=\"x\">hello &amp; bye</div>".into(),
        }),
        user_actions: "mm|10,20".into(),
    });
}

#[test]
fn frameset_page_roundtrips() {
    roundtrip(&NewContent {
        doc_time: 7,
        head_children: vec![],
        top: TopLevel::Frames {
            frameset: ElementPayload {
                tag: "frameset".into(),
                attrs: vec![("rows".into(), "20%,80%".into())],
                inner_html: "<frame src=\"/nav\"><frame src=\"/main\">".into(),
            },
            noframes: Some(ElementPayload::new("noframes", "Frames required.")),
        },
        user_actions: String::new(),
    });
}

#[test]
fn frameset_without_noframes_roundtrips() {
    roundtrip(&NewContent {
        doc_time: 0,
        head_children: vec![],
        top: TopLevel::Frames {
            frameset: ElementPayload::new("frameset", "<frame src=\"/a\">"),
            noframes: None,
        },
        user_actions: String::new(),
    });
}

#[test]
fn framing_hostile_content_roundtrips() {
    // Content engineered against the transport: CDATA terminators, XML
    // markup, the codec's own separators' neighbours, unicode, controls.
    for hostile in [
        "]]> <script>alert(1)</script>",
        "<![CDATA[nested opener]]>",
        "<newContent><docTime>0</docTime></newContent>",
        "a&b<c>d\"e'f",
        "unicode: 中文 🙂 \u{FFFD}",
        "tab\tnewline\ncarriage\r",
    ] {
        roundtrip(&NewContent {
            doc_time: 42,
            head_children: vec![ElementPayload::new("title", hostile)],
            top: TopLevel::Body(ElementPayload {
                tag: "body".into(),
                attrs: vec![("data-x".into(), hostile.replace(['\u{1}', '\u{2}'], " "))],
                inner_html: hostile.into(),
            }),
            user_actions: String::new(),
        });
    }
}

#[test]
fn many_head_children_keep_order() {
    let nc = NewContent {
        doc_time: 9,
        head_children: (0..12)
            .map(|i| ElementPayload::new("meta", format!("slot {i}")))
            .collect(),
        top: TopLevel::Body(ElementPayload::new("body", "")),
        user_actions: String::new(),
    };
    roundtrip(&nc);
}

#[test]
fn empty_body_means_no_new_content() {
    assert_eq!(parse_new_content("").unwrap(), None);
    assert_eq!(parse_new_content("   \n").unwrap(), None);
}

#[test]
fn parser_rejects_foreign_documents() {
    assert!(parse_new_content("<otherRoot/>").is_err());
    assert!(parse_new_content("<newContent></newContent>").is_err());
    assert!(parse_new_content("not xml at all").is_err());
}
