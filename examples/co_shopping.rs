//! The §5.2.2 scenario: online co-shopping with form co-filling.
//!
//! Run with: `cargo run --example co_shopping`
//!
//! Bob hosts a session on a session-protected storefront. Alice browses
//! *through Bob's session* (her actions are piggybacked to the agent and
//! replayed by the host browser), picks a laptop, and co-fills the
//! shipping address form — the paper's Figure 10 moment, where form data
//! typed on Alice's browser appears in the form on Bob's.

use rcb::browser::{BrowserKind, UserAction};
use rcb::core::usability::{study_world, SHOP_HOST};
use rcb::util::SimDuration;

fn main() {
    let mut world = study_world(21);
    let alice = world.add_participant(BrowserKind::InternetExplorer);

    // Bob opens the storefront; Alice's browser follows.
    world
        .host_navigate(&format!("http://{SHOP_HOST}/"))
        .unwrap();
    world.poll_participant(alice).unwrap();
    println!("storefront synchronized to Alice");

    // Alice drives: search, then open a product — through Bob's session.
    world.participant_action(
        alice,
        UserAction::Navigate {
            url: format!("http://{SHOP_HOST}/search?q=macbook"),
        },
    );
    world.poll_participant(alice).unwrap(); // action → host navigates
    world.sleep(SimDuration::from_secs(1));
    world.poll_participant(alice).unwrap(); // results → Alice
    println!(
        "Alice searched; host now at {}",
        world.host.browser.url.as_ref().unwrap()
    );

    world.participant_action(
        alice,
        UserAction::Navigate {
            url: format!("http://{SHOP_HOST}/product/2"),
        },
    );
    world.poll_participant(alice).unwrap();
    world.sleep(SimDuration::from_secs(1));
    world.poll_participant(alice).unwrap();
    println!("Alice picked product 2 — final choice");

    // Bob adds it to the cart and starts checkout (session-protected).
    world
        .host_navigate(&format!("http://{SHOP_HOST}/cart/add?id=2"))
        .unwrap();
    world
        .host_navigate(&format!("http://{SHOP_HOST}/checkout"))
        .unwrap();
    world.sleep(SimDuration::from_secs(1));
    world.poll_participant(alice).unwrap();
    println!("checkout form synchronized to Alice");

    // Alice co-fills the shipping form from her browser.
    for (field, value) in [
        ("fullname", "Alice Cousin"),
        ("street", "653 5th Ave"),
        ("city", "New York"),
        ("zip", "10022"),
    ] {
        world.participant_action(
            alice,
            UserAction::FormInput {
                form: "shipping".into(),
                field: field.into(),
                value: value.into(),
            },
        );
    }
    world.sleep(SimDuration::from_secs(2));
    world.poll_participant(alice).unwrap();

    // Figure-10 check: Alice's data is in the form on Bob's browser.
    let host_doc = world.host.browser.doc.as_ref().unwrap();
    let form = rcb::html::query::element_by_id(host_doc, host_doc.root(), "shipping").unwrap();
    let fields = rcb::html::query::form_fields(host_doc, form);
    println!("shipping form on Bob's browser, filled by Alice:");
    for (name, value) in &fields {
        println!("  {name:>10}: {value}");
    }
    assert!(fields.contains(&("street".into(), "653 5th Ave".into())));

    // Bob submits the form and completes the order.
    world.host_submit_form("shipping").unwrap();
    world.host_submit_form("confirm").unwrap();
    let page = world.host.browser.doc.as_ref().unwrap();
    assert!(page.text_content(page.root()).contains("Order placed"));
    println!("order placed through Bob's session ✓");

    // The confirmation page reaches Alice too.
    world.sleep(SimDuration::from_secs(1));
    world.poll_participant(alice).unwrap();
    let alice_doc = world.participants[alice].browser.doc.as_ref().unwrap();
    assert!(alice_doc
        .text_content(alice_doc.root())
        .contains("Order placed"));
    println!("confirmation mirrored to Alice ✓");
}
