//! The §5.2.1 scenario: coordinating a meeting spot on a maps site.
//!
//! Run with: `cargo run --example google_maps`
//!
//! Bob hosts, Alice joins; Bob geocodes "653 5th Ave, New York", zooms,
//! pans — each view change is an Ajax update under a constant URL, which
//! is precisely what URL-sharing co-browsing cannot mirror and RCB can.

use rcb::browser::{BrowserKind, UserAction};
use rcb::core::usability::{host_maps_set_viewport, study_world, MAPS_HOST};
use rcb::origin::apps::maps::MapsApp;
use rcb::util::SimDuration;

fn main() {
    let mut world = study_world(7);
    let alice = world.add_participant(BrowserKind::Firefox);

    // Bob searches the Cartier store.
    let spot = MapsApp::geocode("653 5th Ave, New York");
    world
        .host_navigate(&format!(
            "http://{MAPS_HOST}/maps?q=653+5th+Ave%2C+New+York"
        ))
        .unwrap();
    println!(
        "Bob's map centered on viewport ({}, {}) z{}",
        spot.x, spot.y, spot.z
    );

    let (sync, _) = world.poll_participant(alice).unwrap();
    println!(
        "Alice received the map in {} ({} tiles fetched)",
        sync.as_ref().map(|s| s.m2.to_string()).unwrap_or_default(),
        sync.as_ref().map(|s| s.objects).unwrap_or(0)
    );

    // Bob zooms in twice and pans east — the URL never changes.
    let mut vp = spot;
    for (label, next) in [
        ("zoom in", vp.zoom_in()),
        ("zoom in", vp.zoom_in().zoom_in()),
        ("pan east", vp.zoom_in().zoom_in().pan(1, 0)),
    ] {
        vp = next;
        host_maps_set_viewport(&mut world, vp).unwrap();
        world.sleep(SimDuration::from_millis(800));
        let (s, _) = world.poll_participant(alice).unwrap();
        println!(
            "{label}: viewport ({}, {}) z{} mirrored to Alice ({})",
            vp.x,
            vp.y,
            vp.z,
            s.map(|s| s.m2.to_string())
                .unwrap_or_else(|| "no-op".into())
        );
    }

    // Alice waves the pointer at the meeting spot; Bob sees it echoed.
    world.participant_action(alice, UserAction::MouseMove { x: 512, y: 384 });
    world.sleep(SimDuration::from_secs(1));
    world.poll_participant(alice).unwrap();
    println!("Alice pointed at the red-roof show-windows — meeting spot agreed ✓");

    // Verify both sides show the same grid.
    let host_doc = world.host.browser.doc.as_ref().unwrap();
    let alice_doc = world.participants[alice].browser.doc.as_ref().unwrap();
    let host_status = host_doc.text_content(host_doc.root());
    let alice_status = alice_doc.text_content(alice_doc.root());
    assert!(alice_status.contains(&format!("viewport {} {} z{}", vp.x, vp.y, vp.z)));
    assert!(host_status.contains(&format!("viewport {} {} z{}", vp.x, vp.y, vp.z)));
    println!("final viewports identical on both browsers ✓");
}
