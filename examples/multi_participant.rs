//! One host, many participants — topology and policy demonstration.
//!
//! Run with: `cargo run --example multi_participant`
//!
//! §3.3: "Each co-browsing host can support multiple participants, and a
//! participant can join or leave a session at any time", with high-level
//! policies deciding who may interact. Shows: mixed browser kinds,
//! generated-content reuse across participants (one M5 generation, N
//! deliveries), view-only policy, and host-confirmed navigation.

use rcb::browser::{BrowserKind, UserAction};
use rcb::core::agent::{AgentConfig, CacheMode};
use rcb::core::policy::{HostDecision, NavigationPolicy};
use rcb::core::session::CoBrowsingWorld;
use rcb::sim::NetProfile;
use rcb::util::SimDuration;

fn main() {
    // Host-confirmed navigation: the instructor inspects requests first.
    let config = AgentConfig {
        cache_mode: CacheMode::Cache,
        nav_policy: NavigationPolicy::HostConfirm,
        ..AgentConfig::default()
    };
    let mut world = CoBrowsingWorld::with_alexa20(NetProfile::lan(), config, 99);

    // Five students join, on different browser families.
    let students: Vec<usize> = (0..5)
        .map(|i| {
            world.add_participant(if i % 2 == 0 {
                BrowserKind::Firefox
            } else {
                BrowserKind::InternetExplorer
            })
        })
        .collect();
    println!("{} participants joined", students.len());

    // The instructor opens the lecture page; everyone follows.
    world.host_navigate("http://wikipedia.org/").unwrap();
    for &s in &students {
        let (sync, _) = world.poll_participant(s).unwrap();
        assert!(sync.is_some());
    }
    println!(
        "all {} participants synchronized; content generated {} time(s) (reused!)",
        students.len(),
        world.host.agent.stats.generations.get()
    );
    assert_eq!(world.host.agent.stats.generations.get(), 1);

    // A student asks to navigate; the policy queues it for confirmation.
    world.participant_action(
        students[2],
        UserAction::Navigate {
            url: "http://cnn.com/".into(),
        },
    );
    world.sleep(SimDuration::from_secs(1));
    world.poll_participant(students[2]).unwrap();
    assert_eq!(world.host.agent.pending_confirmation.len(), 1);
    println!("student #3 requested cnn.com — pending host confirmation");

    // The instructor approves; the world executes the navigation.
    let effect = world
        .host
        .agent
        .decide_pending(HostDecision::Approve)
        .unwrap();
    if let rcb::core::agent::HostEffect::Navigate(url) = effect {
        world.host_navigate(&url).unwrap();
    }
    println!(
        "approved; host now at {}",
        world.host.browser.url.as_ref().unwrap()
    );

    // Everyone re-syncs to the new page.
    world.sleep(SimDuration::from_secs(1));
    for &s in &students {
        let (sync, _) = world.poll_participant(s).unwrap();
        assert!(sync.is_some());
    }
    let d0 = world.participants[students[0]]
        .browser
        .doc
        .as_ref()
        .unwrap();
    assert!(d0.text_content(d0.root()).contains("cnn.com"));
    println!("lecture moved to cnn.com for every participant ✓");

    // One student leaves mid-session.
    world.remove_participant(students[4]);
    println!(
        "a student left; {} participants remain connected",
        world.host.agent.participants().len()
    );
}
