//! Quickstart: host a co-browsing session, join it, synchronize a page.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Walks the paper's nine-step session (§3.1) on a simulated LAN: the
//! host starts RCB-Agent, a participant joins with a regular browser,
//! the host navigates, and the participant's page follows — then a
//! dynamic DOM change on the host side synchronizes too.

use rcb::browser::BrowserKind;
use rcb::core::agent::{AgentConfig, CacheMode};
use rcb::core::session::CoBrowsingWorld;
use rcb::sim::NetProfile;
use rcb::util::SimDuration;

fn main() {
    // Step 1: the host starts RCB-Agent (cache mode, 1 s polling).
    let config = AgentConfig {
        cache_mode: CacheMode::Cache,
        ..AgentConfig::default()
    };
    let mut world = CoBrowsingWorld::with_alexa20(NetProfile::lan(), config, 42);
    println!(
        "RCB session up — key (share out of band): {}",
        world.host.agent.key().to_hex()
    );

    // Step 2: a participant joins by typing the agent URL.
    let alice = world.add_participant(BrowserKind::Firefox);
    println!("participant joined at {}", world.now);

    // Steps 3-4: the host browses a page.
    let load = world.host_navigate("http://wikipedia.org/").unwrap();
    println!(
        "host loaded wikipedia.org: M1 = {} ({} objects, {} moved)",
        load.html_time, load.objects_fetched, load.bytes_moved
    );

    // Steps 5-8: the participant's next poll synchronizes everything.
    let (sync, _) = world.poll_participant(alice).unwrap();
    let sync = sync.expect("first poll carries the page");
    println!(
        "participant synchronized: M2 = {}, objects in {} (cache mode, {} objects)",
        sync.m2, sync.object_time, sync.objects
    );

    // Step 9: dynamic changes keep flowing.
    world
        .host
        .browser
        .mutate_dom(|doc| {
            let body = doc.body().expect("page has a body");
            let banner = doc.create_element("div");
            doc.set_attr(banner, "id", "banner");
            let text = doc.create_text("— edited live by the host —");
            doc.append_child(banner, text).unwrap();
            doc.append_child(body, banner).unwrap();
        })
        .unwrap();
    world.sleep(SimDuration::from_secs(1));
    let (resync, _) = world.poll_participant(alice).unwrap();
    assert!(resync.is_some(), "dynamic change must resynchronize");
    let doc = world.participants[alice].browser.doc.as_ref().unwrap();
    assert!(doc
        .text_content(doc.root())
        .contains("edited live by the host"));
    println!("dynamic DOM change mirrored to the participant ✓");

    println!(
        "agent stats: {} generations, {} polls with content, {} empty polls",
        world.host.agent.stats.generations.get(),
        world.host.agent.stats.polls_with_content.get(),
        world.host.agent.stats.polls_empty.get()
    );
}
