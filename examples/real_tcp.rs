//! RCB over real TCP sockets — the deployment path.
//!
//! Run with: `cargo run --example real_tcp`
//!
//! Everything else in the workspace runs on virtual time; this example is
//! the paper's practicality claim made literal: RCB-Agent listening on a
//! real `std::net` port (§3.1 step 1 used port 3000; we take an ephemeral
//! one), a participant connecting with plain HTTP, HMAC-authenticated
//! polls, live DOM updates, and form co-filling — all over the loopback
//! interface.
//!
//! The server backend is runtime-selectable: run with
//! `RCB_SERVER_BACKEND=epoll` to serve the same session from the
//! event-driven epoll loop, or `RCB_SERVER_BACKEND=epoll-sharded` for the
//! sharded engine (`RCB_SERVER_SHARDS` event loops, default: available
//! cores, connections distributed round-robin) instead of the default
//! worker pool — the session flow is identical every way.

use rcb::browser::UserAction;
use rcb::core::snippet::SnippetOutcome;
use rcb::core::tcp::{TcpHost, TcpParticipant};

const PAGE: &str = r#"<html><head><title>team dashboard</title></head>
<body>
  <h1 id="headline">deploy checklist</h1>
  <ul id="items"><li>run tests</li><li>tag release</li></ul>
  <form id="signoff" action="/signoff"><input type="text" name="approver" value=""></form>
</body></html>"#;

fn main() {
    // Host side: agent on a real socket, page loaded in the host browser.
    let mut host = TcpHost::start("127.0.0.1:0", "http://dashboard.local/", PAGE).unwrap();
    let addr = host.addr().to_string();
    println!(
        "RCB-Agent listening on {addr} ({} backend{} — set \
         RCB_SERVER_BACKEND=workers|epoll|epoll-sharded)",
        host.backend(),
        match host.backend() {
            rcb::http::ServerBackend::EpollSharded(n) => format!(", {n} event-loop shards"),
            _ => String::new(),
        }
    );
    println!("session key (out-of-band): {}", host.key().to_hex());

    // Participant side: join with the shared key, first poll syncs the page.
    let mut alice = TcpParticipant::join(&addr, host.key().clone(), 1).unwrap();
    match alice.poll().unwrap() {
        SnippetOutcome::Updated { doc_time, .. } => {
            println!("alice synchronized (doc_time {doc_time})");
        }
        other => panic!("expected initial sync, got {other:?}"),
    }
    let doc = alice.browser.doc.as_ref().unwrap();
    assert!(doc.text_content(doc.root()).contains("deploy checklist"));

    // Host edits the page live; alice picks it up on the next poll.
    host.mutate_page(|doc| {
        let root = doc.root();
        let items = rcb::html::query::element_by_id(doc, root, "items").unwrap();
        let li = doc.create_element("li");
        let t = doc.create_text("ship it");
        doc.append_child(li, t).unwrap();
        doc.append_child(items, li).unwrap();
    })
    .unwrap();
    alice
        .poll_until_update(20, std::time::Duration::from_millis(25))
        .unwrap();
    let doc = alice.browser.doc.as_ref().unwrap();
    assert!(doc.text_content(doc.root()).contains("ship it"));
    println!("live host edit mirrored to alice ✓");

    // Alice co-fills the sign-off form; the merge lands on the host DOM.
    alice.act(UserAction::FormInput {
        form: "signoff".into(),
        field: "approver".into(),
        value: "alice@example.com".into(),
    });
    alice.poll().unwrap();
    assert_eq!(
        host.form_fields("signoff"),
        vec![("approver".to_string(), "alice@example.com".to_string())]
    );
    println!("alice's form input merged into the host page ✓");

    host.shutdown();
    println!("session closed");
}
