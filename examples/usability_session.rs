//! Replays the full §5.2.3 usability-study session (Table 2).
//!
//! Run with: `cargo run --example usability_session`
//!
//! Executes all 20 tasks with scripted role-players (Bob hosting, Alice
//! participating) and prints the per-task outcome and timing — the
//! Table-2 protocol as an executable artifact.

use rcb::core::usability::run_session;

fn main() {
    let result = run_session(2009).expect("session runs to completion");
    println!("Table 2 — the 20 tasks of one co-browsing session\n");
    println!(
        "{:<7} {:<45} {:>9} {:>7}",
        "Task#", "Description", "Duration", "Result"
    );
    for t in &result.tasks {
        println!(
            "{:<7} {:<45} {:>9} {:>7}",
            t.id,
            t.description,
            t.duration.to_string(),
            if t.ok { "ok" } else { "FAILED" }
        );
    }
    let minutes = result.total.as_secs_f64() / 60.0;
    println!(
        "\nsession complete: {}/{} tasks succeeded in {minutes:.1} virtual minutes",
        result.tasks.iter().filter(|t| t.ok).count(),
        result.tasks.len()
    );
    println!("(the paper's 10 pairs averaged 10.8 minutes for two sessions)");
    assert!(result.all_ok());
}
