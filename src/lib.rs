//! # RCB — Real-time Collaborative Browsing
//!
//! A comprehensive Rust reproduction of *"RCB: A Simple and Practical
//! Framework for Real-time Collaborative Browsing"* (Yue, Chu, Wang —
//! USENIX ATC 2009), including every substrate the paper's system leans
//! on: an HTML/DOM engine, an HTTP/1.1 stack, a discrete-event network
//! simulator, a browser cache, origin-server applications, and
//! from-scratch crypto for request authentication.
//!
//! This facade crate re-exports the workspace so applications can depend
//! on one crate:
//!
//! ```
//! use rcb::core::agent::{AgentConfig, CacheMode};
//! use rcb::core::session::CoBrowsingWorld;
//! use rcb::browser::BrowserKind;
//! use rcb::sim::NetProfile;
//!
//! // Build a co-browsing world on a simulated LAN, host a page, sync it.
//! let mut world = CoBrowsingWorld::with_alexa20(
//!     NetProfile::lan(),
//!     AgentConfig { cache_mode: CacheMode::Cache, ..AgentConfig::default() },
//!     42,
//! );
//! let alice = world.add_participant(BrowserKind::Firefox);
//! world.host_navigate("http://google.com/").unwrap();
//! let (sync, _) = world.poll_participant(alice).unwrap();
//! assert!(sync.is_some());
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

/// The paper's contribution: RCB-Agent, Ajax-Snippet, sessions, policies.
pub use rcb_core as core;

/// Simulated browser engine (navigation, cache, actions, observer).
pub use rcb_browser as browser;

/// Browser object cache and the agent's URI→key mapping table.
pub use rcb_cache as cache;

/// From-scratch SHA-256 / HMAC / keystream / session keys.
pub use rcb_crypto as crypto;

/// HTML tokenizer, tolerant tree builder, arena DOM, serialization.
pub use rcb_html as html;

/// HTTP/1.1 messages, incremental parser, TCP server/client.
pub use rcb_http as http;

/// Simulated origin servers: Alexa-20 synthetic sites, maps and shop apps.
pub use rcb_origin as origin;

/// Discrete-event network simulator and environment profiles.
pub use rcb_sim as sim;

/// URL parsing/resolution, percent-encoding, JS escape/unescape.
pub use rcb_url as url;

/// Shared plumbing: errors, simulated time, RNG, metrics.
pub use rcb_util as util;

/// The Fig.-4 newContent XML wire format.
pub use rcb_xml as xml;
