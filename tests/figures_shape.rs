//! Experiments-as-tests: the headline shapes of every figure and table.
//!
//! These tests re-run (single-repetition versions of) the paper's
//! evaluation and assert the *qualitative* results the paper reports —
//! who wins, by roughly what factor, where the crossovers fall. The bench
//! harness (`rcb-bench`) produces the full numeric series.

use rcb::core::agent::CacheMode;
use rcb::core::session::measure_site;
use rcb::origin::sites::TABLE1_SIZES_KB;
use rcb::sim::NetProfile;

#[test]
fn figure6_lan_m2_below_m1_for_all_20_sites() {
    for (idx, site, _) in TABLE1_SIZES_KB {
        let (load, sync) =
            measure_site(NetProfile::lan(), CacheMode::Cache, site, idx as u64).unwrap();
        assert!(
            sync.m2 < load.html_time,
            "{site}: M2 {} !< M1 {}",
            sync.m2,
            load.html_time
        );
        // Paper: "the values of M2 are less than 0.4 seconds" in the LAN.
        assert!(
            sync.m2.as_millis() < 400,
            "{site}: LAN M2 {} exceeds 0.4 s",
            sync.m2
        );
    }
}

#[test]
fn figure7_wan_m2_below_m1_for_most_sites() {
    // Paper: "most values of M2 (17 out of 20 sample sites) are still
    // smaller than those of M1". Require the same shape: a clear
    // majority below, at least one large page above.
    let mut below = 0;
    let mut above = Vec::new();
    for (idx, site, kb) in TABLE1_SIZES_KB {
        let (load, sync) =
            measure_site(NetProfile::wan(), CacheMode::Cache, site, idx as u64).unwrap();
        if sync.m2 < load.html_time {
            below += 1;
        } else {
            above.push((site, kb));
        }
    }
    assert!(below >= 14, "only {below}/20 sites had M2 < M1");
    assert!(
        !above.is_empty(),
        "expected the largest pages to cross over in the WAN"
    );
    for (site, kb) in &above {
        assert!(
            *kb > 100.0,
            "unexpected small-page crossover: {site} ({kb} KB)"
        );
    }
}

#[test]
fn figure8_cache_mode_wins_for_objects_on_lan_all_sites() {
    for (idx, site, _) in TABLE1_SIZES_KB {
        let (_, cache) =
            measure_site(NetProfile::lan(), CacheMode::Cache, site, idx as u64).unwrap();
        let (_, noncache) =
            measure_site(NetProfile::lan(), CacheMode::NonCache, site, idx as u64).unwrap();
        assert!(
            cache.object_time < noncache.object_time,
            "{site}: M4 {} !< M3 {}",
            cache.object_time,
            noncache.object_time
        );
    }
}

#[test]
fn table1_m5_tracks_page_size_and_mode() {
    use rcb::browser::{Browser, BrowserKind};
    use rcb::cache::MappingTable;
    use rcb::core::content::generate_content;
    use rcb::crypto::SessionKey;
    use rcb::origin::OriginRegistry;
    use rcb::sim::link::Pipe;
    use rcb::util::{DetRng, SimDuration, SimTime};

    let key = SessionKey::generate_deterministic(&mut DetRng::new(1));
    let mut m5_noncache = Vec::new();
    let mut m5_cache = Vec::new();
    for (_, site, kb) in [TABLE1_SIZES_KB[1], TABLE1_SIZES_KB[7], TABLE1_SIZES_KB[12]] {
        // google (6.8), facebook (23.2), amazon (228.5)
        let mut origins = OriginRegistry::with_alexa20();
        let profile = NetProfile::lan();
        let mut pipe = Pipe::new(profile.host_origin);
        let mut host = Browser::new(BrowserKind::Firefox);
        host.navigate(
            &rcb::url::Url::parse(&format!("http://{site}/")).unwrap(),
            &mut origins,
            &mut pipe,
            &profile,
            SimTime::ZERO,
        )
        .unwrap();
        // Warm up, then take the best of several runs to de-noise.
        let mut best_nc = SimDuration::from_secs(3600);
        let mut best_c = SimDuration::from_secs(3600);
        for _ in 0..7 {
            let mut m = MappingTable::new();
            let nc = generate_content(&host, CacheMode::NonCache, &mut m, &key, "", 1, "")
                .unwrap()
                .generation_cost;
            best_nc = best_nc.min(nc);
            let mut m = MappingTable::new();
            let c = generate_content(&host, CacheMode::Cache, &mut m, &key, "", 1, "")
                .unwrap()
                .generation_cost;
            best_c = best_c.min(c);
        }
        m5_noncache.push((kb, best_nc));
        m5_cache.push((kb, best_c));
    }
    // Larger pages cost more (Table 1 observation 1).
    assert!(m5_noncache[0].1 < m5_noncache[2].1);
    assert!(m5_cache[0].1 < m5_cache[2].1);
    // Cache mode costs more than non-cache overall (observation 3).
    let total_nc: u64 = m5_noncache.iter().map(|(_, d)| d.as_micros()).sum();
    let total_c: u64 = m5_cache.iter().map(|(_, d)| d.as_micros()).sum();
    assert!(
        total_c > total_nc,
        "cache {total_c}us !> non-cache {total_nc}us"
    );
}

#[test]
fn table1_m6_stays_under_a_third_of_a_second() {
    // Paper observation 4: "this processing time is less than one-third
    // of a second for all the 20 webpages" — and our hardware is ~17
    // years newer, so this must hold with margin.
    for (idx, site, _) in TABLE1_SIZES_KB {
        let (_, sync) =
            measure_site(NetProfile::lan(), CacheMode::Cache, site, idx as u64).unwrap();
        // m2 includes the M6 update cost; bound the whole thing.
        assert!(
            sync.m2.as_millis() < 333,
            "{site}: sync cost {} exceeds 1/3 s",
            sync.m2
        );
    }
}

#[test]
fn wan_sync_slower_than_lan_sync_everywhere() {
    for (idx, site, _) in [TABLE1_SIZES_KB[0], TABLE1_SIZES_KB[9], TABLE1_SIZES_KB[19]] {
        let (_, lan) = measure_site(NetProfile::lan(), CacheMode::Cache, site, idx as u64).unwrap();
        let (_, wan) = measure_site(NetProfile::wan(), CacheMode::Cache, site, idx as u64).unwrap();
        assert!(
            wan.m2 > lan.m2,
            "{site}: WAN M2 {} !> LAN M2 {}",
            wan.m2,
            lan.m2
        );
    }
}
