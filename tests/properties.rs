//! Property-based tests over the core data structures and invariants.
//!
//! These are the invariants the whole protocol's correctness leans on:
//! codecs must round-trip for *arbitrary* inputs (participant actions and
//! page content are attacker-controlled strings), serialization must be a
//! fixpoint, and the MAC must bind exactly the signed content.

use proptest::prelude::*;

use rcb::browser::UserAction;
use rcb::crypto::SessionKey;
use rcb::url::jsescape::{escape, unescape};
use rcb::url::percent;
use rcb::util::DetRng;
use rcb::xml::{parse_new_content, write_new_content, ElementPayload, NewContent, TopLevel};

proptest! {
    // ---- URL / escaping codecs ------------------------------------------

    #[test]
    fn percent_roundtrips(s in ".{0,200}") {
        prop_assert_eq!(percent::decode(&percent::encode(&s)), s);
    }

    #[test]
    fn form_coding_roundtrips(s in ".{0,200}") {
        prop_assert_eq!(percent::decode_form(&percent::encode_form(&s)), s);
    }

    #[test]
    fn js_escape_roundtrips(s in "\\PC{0,300}") {
        prop_assert_eq!(unescape(&escape(&s)), s);
    }

    #[test]
    fn js_escape_output_is_cdata_safe(s in "\\PC{0,300}") {
        let escaped = escape(&s);
        // No '<', ']' or raw control chars survive escaping, so CDATA
        // sections and XML structure can never be broken by content.
        prop_assert!(!escaped.contains('<'));
        prop_assert!(!escaped.contains(']'));
        prop_assert!(!escaped.contains('&'));
    }

    #[test]
    fn query_pairs_roundtrip(pairs in proptest::collection::vec((".{0,30}", ".{0,30}"), 0..8)) {
        let typed: Vec<(String, String)> = pairs;
        let q = percent::build_query(&typed);
        prop_assert_eq!(percent::parse_query(&q), typed);
    }

    #[test]
    fn url_join_produces_normalized_absolute(
        base_path in "(/[a-z]{1,6}){0,4}/?",
        reference in "(\\.\\./|\\./)?([a-z]{1,8}/){0,3}[a-z]{0,8}(\\?[a-z=&]{0,10})?"
    ) {
        let base = rcb::url::Url::parse(&format!("http://host{base_path}")).unwrap();
        if let Ok(joined) = base.join(&reference) {
            prop_assert!(joined.path.starts_with('/'));
            prop_assert!(!joined.path.contains("/../"));
            prop_assert!(!joined.path.contains("/./"));
            // Joining is idempotent on its own output.
            let reparsed = rcb::url::Url::parse(&joined.to_string()).unwrap();
            prop_assert_eq!(reparsed, joined);
        }
    }

    // ---- Wire formats -----------------------------------------------------

    #[test]
    fn element_payload_roundtrips(
        tag in "[a-z]{1,10}",
        attrs in proptest::collection::vec(("[a-z]{1,8}", "\\PC{0,40}"), 0..5),
        inner in "\\PC{0,200}"
    ) {
        // Attribute values cannot contain the separators the codec uses
        // for framing *before* escaping; the real pipeline never produces
        // them because HTML attribute parsing strips control characters.
        let attrs: Vec<(String, String)> = attrs
            .into_iter()
            .map(|(k, v)| (k, v.replace(['\u{1}', '\u{2}'], " ").replace('=', ":")))
            .collect();
        let p = ElementPayload {
            tag,
            attrs,
            inner_html: inner.replace(['\u{1}', '\u{2}'], " "),
        };
        prop_assert_eq!(ElementPayload::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn new_content_roundtrips(
        title in "\\PC{0,60}",
        body_html in "\\PC{0,300}",
        doc_time in 0u64..u64::MAX / 2,
        actions in "[a-z0-9|,.%-]{0,60}"
    ) {
        let nc = NewContent {
            doc_time,
            head_children: vec![ElementPayload::new("title", title)],
            top: TopLevel::Body(ElementPayload::new("body", body_html)),
            user_actions: actions,
        };
        let xml = write_new_content(&nc);
        let parsed = parse_new_content(&xml).unwrap().unwrap();
        prop_assert_eq!(parsed, nc);
    }

    #[test]
    fn action_codec_roundtrips_any_strings(
        form in "\\PC{0,30}",
        field in "\\PC{0,30}",
        value in "\\PC{0,60}",
        x in -10_000i32..10_000,
        y in -10_000i32..10_000
    ) {
        for action in [
            UserAction::FormInput {
                form: form.clone(),
                field: field.clone(),
                value: value.clone(),
            },
            UserAction::Click { target: value.clone() },
            UserAction::MouseMove { x, y },
            UserAction::Navigate { url: form.clone() },
        ] {
            let decoded = UserAction::decode(&action.encode()).unwrap();
            prop_assert_eq!(decoded, action);
        }
    }

    // ---- Crypto -----------------------------------------------------------

    #[test]
    fn hmac_binds_message_and_key(
        msg_a in proptest::collection::vec(any::<u8>(), 0..200),
        msg_b in proptest::collection::vec(any::<u8>(), 0..200),
        seed_a in 0u64..1000,
        seed_b in 0u64..1000
    ) {
        let key_a = SessionKey::generate_deterministic(&mut DetRng::new(seed_a));
        let key_b = SessionKey::generate_deterministic(&mut DetRng::new(seed_b));
        let mac = rcb::crypto::hmac::hmac_sha256_hex(key_a.as_bytes(), &msg_a);
        prop_assert!(rcb::crypto::verify_hmac_hex(key_a.as_bytes(), &msg_a, &mac));
        if msg_a != msg_b {
            prop_assert!(!rcb::crypto::verify_hmac_hex(key_a.as_bytes(), &msg_b, &mac));
        }
        if seed_a != seed_b {
            prop_assert!(!rcb::crypto::verify_hmac_hex(key_b.as_bytes(), &msg_a, &mac));
        }
    }

    #[test]
    fn keystream_roundtrips(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        nonce in any::<u64>(),
        seed in 0u64..1000
    ) {
        let key = SessionKey::generate_deterministic(&mut DetRng::new(seed));
        let ct = rcb::crypto::keystream::encrypt(key.as_bytes(), nonce, &data);
        prop_assert_eq!(rcb::crypto::keystream::decrypt(key.as_bytes(), nonce, &ct), data);
    }

    // ---- HTML -------------------------------------------------------------

    #[test]
    fn html_serialize_is_a_fixpoint(
        texts in proptest::collection::vec("[ -~]{0,40}", 1..6),
        tags in proptest::collection::vec(prop::sample::select(
            vec!["div", "span", "p", "b", "ul", "li", "h1", "em"]), 1..6),
        attr_vals in proptest::collection::vec("[ -~&&[^\"&]]{0,20}", 1..6)
    ) {
        // Build a random but well-formed fragment.
        let mut html = String::new();
        for ((t, tag), val) in texts.iter().zip(tags.iter()).zip(attr_vals.iter()) {
            html.push_str(&format!(
                "<{tag} class=\"{val}\">{}</{tag}>",
                rcb::html::serialize::escape_text(t)
            ));
        }
        let once = {
            let doc = rcb::html::parse_document(&html);
            rcb::html::serialize::serialize_document(&doc)
        };
        let twice = {
            let doc = rcb::html::parse_document(&once);
            rcb::html::serialize::serialize_document(&doc)
        };
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn html_parser_never_panics(s in "\\PC{0,400}") {
        let doc = rcb::html::parse_document(&s);
        // And serialization of whatever it built never panics either.
        let _ = rcb::html::serialize::serialize_document(&doc);
    }

    #[test]
    fn http_request_roundtrips(
        path_seg in "[a-z0-9]{1,12}",
        q in "[a-z0-9=&]{0,24}",
        body in proptest::collection::vec(any::<u8>(), 0..200)
    ) {
        let target = if q.is_empty() {
            format!("/{path_seg}")
        } else {
            format!("/{path_seg}?{q}")
        };
        let req = rcb::http::Request::post(target, body);
        let wire = rcb::http::serialize::serialize_request(&req);
        prop_assert_eq!(rcb::http::parse_request(&wire).unwrap(), req);
    }

    // ---- Cache ------------------------------------------------------------

    #[test]
    fn cache_never_exceeds_capacity(
        ops in proptest::collection::vec(("[a-z]{1,6}", 1usize..4000), 1..40)
    ) {
        use rcb::cache::Cache;
        use rcb::util::{ByteSize, SimTime};
        let cap = ByteSize::bytes(8 * 1024);
        let mut cache = Cache::new(cap);
        for (i, (name, size)) in ops.into_iter().enumerate() {
            cache.store(&name, "t", vec![0u8; size], SimTime::from_millis(i as u64));
            prop_assert!(cache.used() <= cap);
        }
    }

    // ---- Simulated time / links -------------------------------------------

    #[test]
    fn transfers_are_fifo_and_monotonic(
        sizes in proptest::collection::vec(1usize..100_000, 1..20),
        bw in 64_000u64..10_000_000
    ) {
        use rcb::sim::link::{Direction, Pipe};
        use rcb::sim::LinkSpec;
        use rcb::util::{SimDuration, SimTime};
        let mut pipe = Pipe::new(LinkSpec::symmetric(bw, SimDuration::from_millis(1)));
        let mut last = SimTime::ZERO;
        for s in sizes {
            let arrival = pipe.transfer(SimTime::ZERO, s, Direction::Down);
            prop_assert!(arrival >= last, "FIFO order violated");
            last = arrival;
        }
    }
}
