//! Cross-crate integration: the full RCB wire protocol, end to end.
//!
//! Every hop goes through real serialization: the snippet's poll is
//! serialized to HTTP bytes and re-parsed before the agent sees it, and
//! the agent's XML response likewise — byte-level fidelity of the whole
//! Fig. 2 → Fig. 5 path.

use rcb::browser::{Browser, BrowserKind, UserAction};
use rcb::core::agent::{AgentConfig, CacheMode, RcbAgent};
use rcb::core::session::CoBrowsingWorld;
use rcb::core::snippet::{AjaxSnippet, SnippetOutcome};
use rcb::crypto::SessionKey;
use rcb::http::serialize::{serialize_request, serialize_response};
use rcb::http::{parse_request, parse_response};
use rcb::origin::OriginRegistry;
use rcb::sim::link::Pipe;
use rcb::sim::NetProfile;
use rcb::util::{DetRng, SimDuration, SimTime};

fn loaded_host(site: &str) -> (Browser, OriginRegistry) {
    let mut origins = OriginRegistry::with_alexa20();
    let profile = NetProfile::lan();
    let mut pipe = Pipe::new(profile.host_origin);
    let mut b = Browser::new(BrowserKind::Firefox);
    b.navigate(
        &rcb::url::Url::parse(&format!("http://{site}/")).unwrap(),
        &mut origins,
        &mut pipe,
        &profile,
        SimTime::ZERO,
    )
    .unwrap();
    (b, origins)
}

#[test]
fn poll_survives_wire_serialization_both_ways() {
    let key = SessionKey::generate_deterministic(&mut DetRng::new(5));
    let mut agent = RcbAgent::new(key.clone(), AgentConfig::default());
    let (mut host, _) = loaded_host("facebook.com");
    let mut snippet = AjaxSnippet::new(1, key, SimDuration::from_secs(1));
    let mut participant = Browser::new(BrowserKind::Firefox);
    participant.doc = Some(rcb::html::parse_document(&agent.initial_page()));

    // Snippet → bytes → agent.
    let poll = snippet.build_poll();
    let wire = serialize_request(&poll);
    let reparsed = parse_request(&wire).expect("poll survives the wire");
    assert_eq!(reparsed, poll);
    let outcome = agent.handle_request(&reparsed, &mut host, SimTime::from_secs(1));

    // Agent → bytes → snippet.
    let resp_wire = serialize_response(&outcome.response);
    let resp = parse_response(&resp_wire).expect("response survives the wire");
    let result = snippet.process_response(&resp, &mut participant).unwrap();
    let SnippetOutcome::Updated { object_urls, .. } = result else {
        panic!("expected content on first poll");
    };
    assert!(!object_urls.is_empty());

    // The participant body mirrors the host body text.
    let hd = host.doc.as_ref().unwrap();
    let pd = participant.doc.as_ref().unwrap();
    assert_eq!(
        hd.text_content(hd.body().unwrap()),
        pd.text_content(pd.body().unwrap())
    );
}

#[test]
fn multi_site_browsing_sequence_stays_in_sync() {
    let mut world = CoBrowsingWorld::with_alexa20(NetProfile::lan(), AgentConfig::default(), 11);
    let p = world.add_participant(BrowserKind::Firefox);
    for site in ["google.com", "ebay.com", "cnn.com", "apple.com"] {
        world.host_navigate(&format!("http://{site}/")).unwrap();
        world.sleep(SimDuration::from_secs(1));
        let (sync, _) = world.poll_participant(p).unwrap();
        assert!(sync.is_some(), "navigation to {site} must resync");
        let hd = world.host.browser.doc.as_ref().unwrap();
        let pd = world.participants[p].browser.doc.as_ref().unwrap();
        assert_eq!(
            hd.text_content(hd.body().unwrap()),
            pd.text_content(pd.body().unwrap()),
            "divergence after {site}"
        );
    }
    // The participant browser never navigated away from the agent: its
    // snippet kept every sync (4 pages) without a location change.
    assert_eq!(world.participants[p].snippet.updates_applied, 4);
}

#[test]
fn frameset_page_synchronizes() {
    // Hand-build a frameset page on the host and push it through the
    // whole stack.
    let key = SessionKey::generate_deterministic(&mut DetRng::new(8));
    let mut agent = RcbAgent::new(
        key.clone(),
        AgentConfig {
            cache_mode: CacheMode::NonCache,
            ..AgentConfig::default()
        },
    );
    let mut host = Browser::new(BrowserKind::Firefox);
    host.url = Some(rcb::url::Url::parse("http://frames.example/").unwrap());
    host.doc = Some(rcb::html::parse_document(
        "<html><head><title>framed</title></head>\
         <frameset rows=\"20%,80%\"><frame src=\"/top.html\"><frame src=\"/main.html\">\
         <noframes>please enable frames</noframes></frameset></html>",
    ));
    host.mutate_dom(|_| {}).unwrap();

    let mut snippet = AjaxSnippet::new(1, key, SimDuration::from_secs(1));
    let mut participant = Browser::new(BrowserKind::InternetExplorer);
    participant.doc = Some(rcb::html::parse_document(&agent.initial_page()));

    let poll = snippet.build_poll();
    let outcome = agent.handle_request(&poll, &mut host, SimTime::from_secs(1));
    let result = snippet
        .process_response(&outcome.response, &mut participant)
        .unwrap();
    assert!(matches!(result, SnippetOutcome::Updated { .. }));
    let pd = participant.doc.as_ref().unwrap();
    assert!(pd.body().is_none(), "initial body replaced by frames");
    let fs = pd.frameset().expect("frameset synchronized");
    assert_eq!(pd.get_attr(fs, "rows"), Some("20%,80%"));
    assert!(pd.text_content(pd.root()).contains("please enable frames"));
}

#[test]
fn participant_actions_round_trip_through_wire_bytes() {
    let key = SessionKey::generate_deterministic(&mut DetRng::new(13));
    let mut agent = RcbAgent::new(key.clone(), AgentConfig::default());
    let (mut host, _) = loaded_host("google.com");
    let mut snippet = AjaxSnippet::new(7, key, SimDuration::from_secs(1));

    snippet.capture_action(UserAction::FormInput {
        form: "q".into(),
        field: "q".into(),
        value: "rust systems — 100% \"quoted\"".into(),
    });
    let wire = serialize_request(&snippet.build_poll());
    let req = parse_request(&wire).unwrap();
    agent.handle_request(&req, &mut host, SimTime::ZERO);

    let hd = host.doc.as_ref().unwrap();
    let form = rcb::html::query::element_by_id(hd, hd.root(), "q").unwrap();
    let fields = rcb::html::query::form_fields(hd, form);
    assert!(fields.contains(&(
        "q".to_string(),
        "rust systems — 100% \"quoted\"".to_string()
    )));
}

#[test]
fn ie_and_firefox_participants_render_identically() {
    let mut world = CoBrowsingWorld::with_alexa20(NetProfile::lan(), AgentConfig::default(), 17);
    let ff = world.add_participant(BrowserKind::Firefox);
    let ie = world.add_participant(BrowserKind::InternetExplorer);
    world.host_navigate("http://nytimes.com/").unwrap();
    world.poll_participant(ff).unwrap().0.unwrap();
    world.poll_participant(ie).unwrap().0.unwrap();
    let d1 = world.participants[ff].browser.doc.as_ref().unwrap();
    let d2 = world.participants[ie].browser.doc.as_ref().unwrap();
    assert_eq!(
        rcb::html::inner_html(d1, d1.body().unwrap()),
        rcb::html::inner_html(d2, d2.body().unwrap())
    );
    assert_eq!(
        rcb::html::inner_html(d1, d1.head().unwrap()),
        rcb::html::inner_html(d2, d2.head().unwrap())
    );
}
