//! Security integration tests (paper §3.4).
//!
//! The agent must reject everything that is not authenticated under the
//! session key: unsigned polls, tampered targets, tampered bodies,
//! replayed MACs on different content, and cache-object fetches with
//! forged tokens.

use rcb::browser::{Browser, BrowserKind, UserAction};
use rcb::core::agent::{AgentConfig, RcbAgent};
use rcb::core::auth;
use rcb::crypto::SessionKey;
use rcb::http::{Request, Status};
use rcb::origin::OriginRegistry;
use rcb::sim::link::Pipe;
use rcb::sim::NetProfile;
use rcb::util::{DetRng, SimTime};

fn loaded_host() -> Browser {
    let mut origins = OriginRegistry::with_alexa20();
    let profile = NetProfile::lan();
    let mut pipe = Pipe::new(profile.host_origin);
    let mut b = Browser::new(BrowserKind::Firefox);
    b.navigate(
        &rcb::url::Url::parse("http://apple.com/").unwrap(),
        &mut origins,
        &mut pipe,
        &profile,
        SimTime::ZERO,
    )
    .unwrap();
    b
}

fn agent_with_seed(seed: u64) -> RcbAgent {
    RcbAgent::new(
        SessionKey::generate_deterministic(&mut DetRng::new(seed)),
        AgentConfig::default(),
    )
}

#[test]
fn unsigned_poll_is_unauthorized() {
    let mut agent = agent_with_seed(1);
    let mut host = loaded_host();
    let req = Request::post("/poll?p=1", b"t=0".to_vec());
    let resp = agent
        .handle_request(&req, &mut host, SimTime::ZERO)
        .response;
    assert_eq!(resp.status, Status::UNAUTHORIZED);
}

#[test]
fn tampered_action_payload_is_rejected() {
    let mut agent = agent_with_seed(2);
    let mut host = loaded_host();
    let mut req = Request::post(
        "/poll?p=1",
        rcb::core::agent::build_poll_body(
            0,
            &[UserAction::Navigate {
                url: "http://apple.com/".into(),
            }],
        ),
    );
    auth::sign_request(agent.key(), &mut req);
    // Attacker swaps the navigation target after signing.
    req.body = rcb::core::agent::build_poll_body(
        0,
        &[UserAction::Navigate {
            url: "http://evil.example/".into(),
        }],
    );
    let outcome = agent.handle_request(&req, &mut host, SimTime::ZERO);
    assert_eq!(outcome.response.status, Status::UNAUTHORIZED);
    assert!(outcome.effects.is_empty(), "no effect from forged action");
}

#[test]
fn mac_from_other_session_does_not_transfer() {
    let mut agent_a = agent_with_seed(3);
    let agent_b = agent_with_seed(4);
    let mut host = loaded_host();
    // Signed for session B, replayed against session A.
    let mut req = Request::post("/poll?p=1", b"t=0".to_vec());
    auth::sign_request(agent_b.key(), &mut req);
    let resp = agent_a
        .handle_request(&req, &mut host, SimTime::ZERO)
        .response;
    assert_eq!(resp.status, Status::UNAUTHORIZED);
    assert_eq!(agent_a.stats.auth_failures.get(), 1);
}

#[test]
fn object_requests_need_valid_tokens() {
    let mut agent = agent_with_seed(5);
    let mut host = loaded_host();
    // Prime the mapping table via a legitimate signed poll.
    let mut poll = Request::post("/poll?p=1", b"t=0".to_vec());
    auth::sign_request(agent.key(), &mut poll);
    let outcome = agent.handle_request(&poll, &mut host, SimTime::from_secs(1));
    let nc = rcb::xml::parse_new_content(&outcome.response.body_str())
        .unwrap()
        .expect("first poll has content");
    let rcb::xml::TopLevel::Body(body) = &nc.top else {
        panic!("expected a body page");
    };
    let idx = body
        .inner_html
        .find("/cache/")
        .expect("cache URLs in content");
    let url: String = body.inner_html[idx..].split('"').next().unwrap().into();

    // No token, and an empty token: both malformed requests (400),
    // byte-identical — token *absence* is a 400, a *wrong* token a 401.
    let bare = url.split('?').next().unwrap().to_string();
    let r1 = agent
        .handle_request(&Request::get(bare.clone()), &mut host, SimTime::ZERO)
        .response;
    assert_eq!(r1.status, Status::BAD_REQUEST);
    let r1e = agent
        .handle_request(
            &Request::get(format!("{bare}?k=")),
            &mut host,
            SimTime::ZERO,
        )
        .response;
    assert_eq!(r1e.status, Status::BAD_REQUEST);
    assert_eq!(r1e.body_str(), r1.body_str());

    // Forged token.
    let r2 = agent
        .handle_request(
            &Request::get(format!("{bare}?k=deadbeefdeadbeef")),
            &mut host,
            SimTime::ZERO,
        )
        .response;
    assert_eq!(r2.status, Status::UNAUTHORIZED);

    // Token for a *different* object does not transfer.
    let other_path = "/cache/999999";
    let stolen = auth::object_token(agent.key(), other_path);
    let r3 = agent
        .handle_request(
            &Request::get(format!("{bare}?k={stolen}")),
            &mut host,
            SimTime::ZERO,
        )
        .response;
    assert_eq!(r3.status, Status::UNAUTHORIZED);

    // The genuine URL works.
    let r4 = agent
        .handle_request(&Request::get(url), &mut host, SimTime::ZERO)
        .response;
    assert!(r4.status.is_success());
}

#[test]
fn view_only_policy_blocks_even_signed_actions() {
    use rcb::core::policy::InteractionPolicy;
    let mut agent = RcbAgent::new(
        SessionKey::generate_deterministic(&mut DetRng::new(6)),
        AgentConfig {
            interaction_policy: InteractionPolicy::ViewOnly,
            ..AgentConfig::default()
        },
    );
    let mut host = loaded_host();
    let mut req = Request::post(
        "/poll?p=1",
        rcb::core::agent::build_poll_body(
            0,
            &[UserAction::Navigate {
                url: "http://cnn.com/".into(),
            }],
        ),
    );
    auth::sign_request(agent.key(), &mut req);
    let outcome = agent.handle_request(&req, &mut host, SimTime::ZERO);
    assert!(outcome.response.status.is_success(), "viewing still works");
    assert!(outcome.effects.is_empty(), "but actions are dropped");
}

#[test]
fn keystream_protects_request_payloads() {
    // §3.4: "any important information in a request can also be
    // efficiently encrypted" — verify the primitive composes with the
    // action codec.
    let key = SessionKey::generate_deterministic(&mut DetRng::new(9));
    let secret_form = UserAction::FormInput {
        form: "shipping".into(),
        field: "card".into(),
        value: "4111-1111-1111-1111".into(),
    };
    let plaintext = secret_form.encode().into_bytes();
    let ct = rcb::crypto::keystream::encrypt(key.as_bytes(), 42, &plaintext);
    assert_ne!(ct, plaintext);
    assert!(!String::from_utf8_lossy(&ct).contains("4111"));
    let pt = rcb::crypto::keystream::decrypt(key.as_bytes(), 42, &ct);
    let decoded = UserAction::decode(&String::from_utf8(pt).unwrap()).unwrap();
    assert_eq!(decoded, secret_form);
}

#[test]
fn response_authentication_extension_end_to_end() {
    // §3.4 future work: the agent signs responses; the snippet verifies.
    use rcb::core::snippet::AjaxSnippet;
    use rcb::util::SimDuration;

    let key = SessionKey::generate_deterministic(&mut DetRng::new(20));
    let mut agent = RcbAgent::new(
        key.clone(),
        AgentConfig {
            authenticate_responses: true,
            ..AgentConfig::default()
        },
    );
    let mut host = loaded_host();
    let mut snippet = AjaxSnippet::new(1, key.clone(), SimDuration::from_secs(1));
    snippet.require_response_auth = true;
    let mut participant = Browser::new(BrowserKind::Firefox);
    participant.doc = Some(rcb::html::parse_document(&agent.initial_page()));

    // Genuine response verifies and applies.
    let poll = snippet.build_poll();
    let outcome = agent.handle_request(&poll, &mut host, SimTime::from_secs(1));
    assert!(outcome
        .response
        .headers
        .get(rcb::core::auth::RESPONSE_MAC_HEADER)
        .is_some());
    assert!(rcb::core::auth::verify_response(&key, &outcome.response));
    snippet
        .process_response(&outcome.response, &mut participant)
        .unwrap();

    // A tampered body fails closed on the participant side.
    host.mutate_dom(|_| {}).unwrap();
    let poll2 = snippet.build_poll();
    let mut outcome2 = agent.handle_request(&poll2, &mut host, SimTime::from_secs(2));
    let mut tampered = outcome2.response.body.to_vec();
    tampered.extend_from_slice(b"<!-- injected -->");
    outcome2.response.body = tampered.into();
    let err = snippet
        .process_response(&outcome2.response, &mut participant)
        .unwrap_err();
    assert_eq!(err.category(), "auth");

    // Without the agent-side option, a strict snippet refuses unsigned
    // responses.
    let mut plain_agent = RcbAgent::new(key.clone(), AgentConfig::default());
    let mut snippet2 = AjaxSnippet::new(2, key, SimDuration::from_secs(1));
    snippet2.require_response_auth = true;
    let poll3 = snippet2.build_poll();
    let outcome3 = plain_agent.handle_request(&poll3, &mut host, SimTime::from_secs(3));
    assert!(snippet2
        .process_response(&outcome3.response, &mut participant)
        .is_err());
}

#[test]
fn agent_never_panics_on_hostile_requests() {
    // Fuzz-style robustness: the agent faces arbitrary method/path/query/
    // body combinations (anything a port-scanning Internet will throw at
    // an open TCP port) and must answer every one without panicking.
    use rcb::http::Method;
    use rcb::util::DetRng;

    let mut agent = agent_with_seed(30);
    let mut host = loaded_host();
    let mut rng = DetRng::new(0xF0CCACC1A);
    let paths = [
        "/",
        "/poll",
        "/cache/0",
        "/cache/99999999",
        "/cache/abc",
        "/cache/",
        "//",
        "/%00",
        "/poll/extra",
        "/favicon.ico",
        "/..",
        "/cache/0/../1",
    ];
    let queries = [
        "",
        "?",
        "?hmac=",
        "?hmac=zz",
        "?p=-1",
        "?p=18446744073709551615",
        "?k=",
        "?k=0000000000000000",
        "?a=b&a=b&a=b",
        "?hmac=ff&hmac=ee",
    ];
    let bodies: [&[u8]; 6] = [
        b"",
        b"t=",
        b"t=99999999999999999999",
        b"t=1\nbogus|x|y",
        b"t=1\nnav|%ZZ",
        &[0xFF, 0xFE, 0x00, 0x01, b'\n', b'|', b'|'],
    ];
    let mut served = 0u32;
    for i in 0..2_000u64 {
        let method = if rng.chance(0.5) {
            Method::Get
        } else {
            Method::Post
        };
        let target = format!("{}{}", rng.choose(&paths), rng.choose(&queries));
        let mut req = rcb::http::Request {
            method,
            target,
            headers: rcb::http::HeaderMap::new(),
            body: rng.choose(&bodies).to_vec(),
        };
        if rng.chance(0.2) {
            // Occasionally a correctly signed request with hostile body.
            auth::sign_request(agent.key(), &mut req);
        }
        let outcome = agent.handle_request(&req, &mut host, SimTime::from_millis(i));
        served += u32::from(outcome.response.status.0 > 0);
    }
    assert_eq!(served, 2_000, "every request got some response");
}
