//! Session-lifecycle and topology scenarios (paper §3.3).
//!
//! "Each co-browsing host can support multiple participants, and a
//! participant can join or leave a session at any time. A user can even
//! host a co-browsing session and meanwhile join sessions hosted by other
//! users."

use rcb::browser::{BrowserKind, UserAction};
use rcb::core::agent::{AgentConfig, CacheMode};
use rcb::core::policy::{HostDecision, InteractionPolicy, NavigationPolicy};
use rcb::core::session::CoBrowsingWorld;
use rcb::sim::NetProfile;
use rcb::util::SimDuration;

fn lan_world(seed: u64) -> CoBrowsingWorld {
    CoBrowsingWorld::with_alexa20(NetProfile::lan(), AgentConfig::default(), seed)
}

#[test]
fn late_joiner_catches_up_immediately() {
    let mut world = lan_world(1);
    let early = world.add_participant(BrowserKind::Firefox);
    world.host_navigate("http://ebay.com/").unwrap();
    world.poll_participant(early).unwrap().0.unwrap();
    // Several pages later a second participant joins mid-session.
    world.host_navigate("http://cnn.com/").unwrap();
    world.sleep(SimDuration::from_secs(3));
    let late = world.add_participant(BrowserKind::InternetExplorer);
    let (sync, _) = world.poll_participant(late).unwrap();
    assert!(sync.is_some(), "late joiner gets the current page at once");
    let doc = world.participants[late].browser.doc.as_ref().unwrap();
    assert!(doc.text_content(doc.root()).contains("cnn.com"));
}

#[test]
fn leaver_does_not_disturb_others() {
    let mut world = lan_world(2);
    let a = world.add_participant(BrowserKind::Firefox);
    let b = world.add_participant(BrowserKind::Firefox);
    world.host_navigate("http://msn.com/").unwrap();
    world.poll_participant(a).unwrap().0.unwrap();
    world.poll_participant(b).unwrap().0.unwrap();
    world.remove_participant(0); // a leaves
                                 // b (now index 0) keeps syncing fine.
    world
        .host
        .browser
        .mutate_dom(|doc| {
            let body = doc.body().unwrap();
            let d = doc.create_element("div");
            doc.append_child(body, d).unwrap();
        })
        .unwrap();
    world.sleep(SimDuration::from_secs(1));
    let (sync, _) = world.poll_participant(0).unwrap();
    assert!(sync.is_some());
    assert_eq!(world.host.agent.participants().len(), 1);
}

#[test]
fn moderated_policy_gates_by_participant_id() {
    let mut world = CoBrowsingWorld::with_alexa20(
        NetProfile::lan(),
        AgentConfig {
            interaction_policy: InteractionPolicy::Moderated([2u64].into_iter().collect()),
            ..AgentConfig::default()
        },
        3,
    );
    let p1 = world.add_participant(BrowserKind::Firefox); // id 1 — not allowed
    let p2 = world.add_participant(BrowserKind::Firefox); // id 2 — allowed
    world.host_navigate("http://google.com/").unwrap();
    world.poll_participant(p1).unwrap();
    world.poll_participant(p2).unwrap();

    world.participant_action(
        p1,
        UserAction::Navigate {
            url: "http://apple.com/".into(),
        },
    );
    world.sleep(SimDuration::from_secs(1));
    world.poll_participant(p1).unwrap();
    assert_eq!(
        world.host.browser.url.as_ref().unwrap().host,
        "google.com",
        "unauthorized participant cannot drive the host"
    );

    world.participant_action(
        p2,
        UserAction::Navigate {
            url: "http://apple.com/".into(),
        },
    );
    world.sleep(SimDuration::from_secs(1));
    world.poll_participant(p2).unwrap();
    assert_eq!(
        world.host.browser.url.as_ref().unwrap().host,
        "apple.com",
        "moderated participant drives the host"
    );
}

#[test]
fn host_confirm_policy_rejects_and_approves() {
    let mut world = CoBrowsingWorld::with_alexa20(
        NetProfile::lan(),
        AgentConfig {
            nav_policy: NavigationPolicy::HostConfirm,
            ..AgentConfig::default()
        },
        4,
    );
    let p = world.add_participant(BrowserKind::Firefox);
    world.host_navigate("http://google.com/").unwrap();
    world.poll_participant(p).unwrap();

    for (url, decision, expected_host) in [
        ("http://ebay.com/", HostDecision::Reject, "google.com"),
        ("http://apple.com/", HostDecision::Approve, "apple.com"),
    ] {
        world.participant_action(p, UserAction::Navigate { url: url.into() });
        world.sleep(SimDuration::from_secs(1));
        world.poll_participant(p).unwrap();
        assert_eq!(world.host.agent.pending_confirmation.len(), 1);
        if let Some(rcb::core::agent::HostEffect::Navigate(u)) =
            world.host.agent.decide_pending(decision)
        {
            world.host_navigate(&u).unwrap();
        }
        assert_eq!(world.host.browser.url.as_ref().unwrap().host, expected_host);
    }
}

#[test]
fn a_user_can_host_and_participate_simultaneously() {
    // Two worlds: user X hosts world 1 and participates in world 2 —
    // "using different browser windows or tabs" (§3.3). The state is
    // fully independent per window, which is what the test pins down.
    let mut world1 = lan_world(5);
    let mut world2 = lan_world(6);
    let _x_guest = world2.add_participant(BrowserKind::Firefox);
    let y_guest = world1.add_participant(BrowserKind::Firefox);

    world1.host_navigate("http://ebay.com/").unwrap(); // X hosts ebay
    world2.host_navigate("http://cnn.com/").unwrap(); // Y hosts cnn
    world1.poll_participant(y_guest).unwrap().0.unwrap();
    world2.poll_participant(0).unwrap().0.unwrap();

    let d1 = world1.participants[y_guest].browser.doc.as_ref().unwrap();
    let d2 = world2.participants[0].browser.doc.as_ref().unwrap();
    assert!(d1.text_content(d1.root()).contains("ebay.com"));
    assert!(d2.text_content(d2.root()).contains("cnn.com"));
}

#[test]
fn non_cache_mode_world_end_to_end_on_wan() {
    let mut world = CoBrowsingWorld::with_alexa20(
        NetProfile::wan(),
        AgentConfig {
            cache_mode: CacheMode::NonCache,
            ..AgentConfig::default()
        },
        7,
    );
    let p = world.add_participant(BrowserKind::Firefox);
    world.host_navigate("http://adobe.com/").unwrap();
    let (sync, _) = world.poll_participant(p).unwrap();
    let sync = sync.unwrap();
    assert!(sync.objects > 0);
    // Objects came from the origin over the participant's own link.
    assert!(world.participants[p]
        .browser
        .cache
        .urls()
        .iter()
        .all(|u| u.starts_with("http://adobe.com/")));
    // WAN sync is slower than a LAN sync of the same page, but bounded.
    assert!(sync.m2 > SimDuration::from_millis(100));
    assert!(sync.m2 < SimDuration::from_secs(10));
}

#[test]
fn mixed_cache_modes_across_sequential_sessions() {
    // The mode is an agent configuration; verify both modes work against
    // the same site back to back with independent worlds.
    for (mode, prefix) in [
        (CacheMode::Cache, "/cache/"),
        (CacheMode::NonCache, "http://free.fr/"),
    ] {
        let mut world = CoBrowsingWorld::with_alexa20(
            NetProfile::lan(),
            AgentConfig {
                cache_mode: mode,
                ..AgentConfig::default()
            },
            8,
        );
        let p = world.add_participant(BrowserKind::Firefox);
        world.host_navigate("http://free.fr/").unwrap();
        world.poll_participant(p).unwrap().0.unwrap();
        let urls = world.participants[p].browser.cache.urls();
        assert!(!urls.is_empty());
        assert!(
            urls.iter().all(|u| u.starts_with(prefix)),
            "mode {mode:?}: unexpected cache keys {urls:?}"
        );
    }
}

#[test]
fn rapid_navigation_only_delivers_latest_content() {
    let mut world = lan_world(9);
    let p = world.add_participant(BrowserKind::Firefox);
    // Host flips through three pages before the participant polls once.
    world.host_navigate("http://google.com/").unwrap();
    world.host_navigate("http://ebay.com/").unwrap();
    world.host_navigate("http://apple.com/").unwrap();
    let (sync, _) = world.poll_participant(p).unwrap();
    assert!(sync.is_some());
    let doc = world.participants[p].browser.doc.as_ref().unwrap();
    let text = doc.text_content(doc.root());
    assert!(
        text.contains("apple.com"),
        "participant sees only the latest page"
    );
    assert_eq!(world.participants[p].snippet.updates_applied, 1);
    // Intermediate pages were never generated for this participant.
    assert_eq!(world.host.agent.stats.polls_with_content.get(), 1);
}

#[test]
fn recorder_captures_and_replays_the_session() {
    use rcb::core::recorder::{SessionEvent, SessionRecorder};
    let mut world = lan_world(10);
    let p = world.add_participant(BrowserKind::Firefox);
    world.host_navigate("http://google.com/").unwrap();
    world.participant_action(
        p,
        UserAction::FormInput {
            form: "q".into(),
            field: "q".into(),
            value: "recorded".into(),
        },
    );
    world.poll_participant(p).unwrap();
    world.remove_participant(p);

    let log = &world.recorder;
    assert!(log
        .events()
        .iter()
        .any(|e| matches!(e.event, SessionEvent::Join { pid: 1 })));
    assert!(log.events().iter().any(
        |e| matches!(e.event, SessionEvent::HostNavigate { ref url } if url.contains("google"))
    ));
    assert!(log
        .events()
        .iter()
        .any(|e| matches!(e.event, SessionEvent::Sync { pid: 1, .. })));
    assert!(log
        .events()
        .iter()
        .any(|e| matches!(e.event, SessionEvent::Leave { pid: 1 })));

    // Text round-trip and replay statistics.
    let text = log.to_text();
    let parsed = SessionRecorder::from_text(&text).unwrap();
    assert_eq!(parsed.events(), log.events());
    let summary = parsed.replay_summary();
    assert_eq!(summary.syncs, 1);
    assert_eq!(summary.actions, 1);
    assert!(summary.mean_sync_lag > rcb::util::SimDuration::ZERO);
}

#[test]
fn host_back_button_resyncs_previous_page() {
    let mut world = lan_world(11);
    let p = world.add_participant(BrowserKind::Firefox);
    world.host_navigate("http://google.com/").unwrap();
    world.poll_participant(p).unwrap().0.unwrap();
    world.host_navigate("http://apple.com/").unwrap();
    world.sleep(SimDuration::from_secs(1));
    world.poll_participant(p).unwrap().0.unwrap();

    // Back to google; the participant follows on the next poll.
    assert!(world.host_back().unwrap().is_some());
    assert_eq!(world.host.browser.url.as_ref().unwrap().host, "google.com");
    world.sleep(SimDuration::from_secs(1));
    let (sync, _) = world.poll_participant(p).unwrap();
    assert!(sync.is_some());
    let doc = world.participants[p].browser.doc.as_ref().unwrap();
    assert!(doc.text_content(doc.root()).contains("google.com"));

    // And forward again.
    assert!(world.host_forward().unwrap().is_some());
    assert_eq!(world.host.browser.url.as_ref().unwrap().host, "apple.com");
    // No further forward history.
    assert!(world.host_forward().unwrap().is_none());
}
